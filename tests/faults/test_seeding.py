"""Seeding-hygiene tests: one Generator per trial, no shared state."""

import numpy as np

from repro.faults.injector import ExponentialInjector, derive_rng
from repro.faults.scenarios import ErrorScenario


class TestDeriveRng:
    def test_int_seed(self):
        a = derive_rng(7).integers(0, 2**31)
        b = derive_rng(7).integers(0, 2**31)
        assert a == b

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(42)
        a = derive_rng(seq).integers(0, 2**31)
        b = derive_rng(np.random.SeedSequence(42)).integers(0, 2**31)
        assert a == b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert derive_rng(gen) is gen

    def test_none_uses_default_seed_not_global_state(self):
        np.random.seed(0)  # repro-lint: allow[unseeded-rng] deliberate global perturbation; proves derive_rng ignores it
        a = derive_rng(None).integers(0, 2**31)
        np.random.seed(12345)  # repro-lint: allow[unseeded-rng] deliberate global perturbation; proves derive_rng ignores it
        b = derive_rng(None).integers(0, 2**31)
        assert a == b


class TestInjectorSeeding:
    def test_injector_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(11)
        a = ExponentialInjector(mtbe=1.0, rng=seq).sample_times(30.0)
        b = ExponentialInjector(
            mtbe=1.0, rng=np.random.SeedSequence(11)).sample_times(30.0)
        assert a == b

    def test_spawned_children_are_independent(self):
        children = np.random.SeedSequence(2015).spawn(2)
        a = ExponentialInjector(mtbe=1.0, rng=children[0]).sample_times(50.0)
        b = ExponentialInjector(mtbe=1.0, rng=children[1]).sample_times(50.0)
        assert a != b

    def test_shared_generator_advances(self):
        gen = np.random.default_rng(9)
        first = ExponentialInjector(mtbe=1.0, rng=gen).sample_times(20.0)
        second = ExponentialInjector(mtbe=1.0, rng=gen).sample_times(20.0)
        assert first != second


class TestScenarioSeeding:
    def test_scenario_with_seed_sequence_is_reproducible(self):
        pages = [("x", p) for p in range(6)]
        scen = ErrorScenario(name="s", normalized_rate=5.0,
                             seed=np.random.SeedSequence(77))
        a = scen.schedule(1.0, 20.0, pages)
        scen2 = ErrorScenario(name="s", normalized_rate=5.0,
                              seed=np.random.SeedSequence(77))
        b = scen2.schedule(1.0, 20.0, pages)
        assert a == b
        assert len(a) > 0

    def test_reseeded_copy(self):
        scen = ErrorScenario(name="s", normalized_rate=5.0, seed=1)
        pages = [("x", p) for p in range(6)]
        clone = scen.reseeded(np.random.SeedSequence(2), name="s2")
        assert clone.name == "s2"
        assert clone.normalized_rate == scen.normalized_rate
        assert scen.schedule(1.0, 20.0, pages) \
            != clone.schedule(1.0, 20.0, pages)

    def test_resilient_solver_runs_with_spawned_scenario(self):
        """End-to-end: a SeedSequence-seeded scenario drives a real solve."""
        from repro.core.manager import make_strategy
        from repro.matrices.stencil import poisson_2d_5pt, stencil_rhs
        from repro.solvers.resilient_cg import ResilientCG, SolverConfig

        A = poisson_2d_5pt(10)
        b = stencil_rhs(A)
        cfg = SolverConfig(num_workers=4, page_size=20, tolerance=1e-8)
        ideal = ResilientCG(A, b, config=cfg).solve()
        child = np.random.SeedSequence(31415).spawn(1)[0]
        scen = ErrorScenario(name="spawned", normalized_rate=10.0,
                             seed=child)
        solver = ResilientCG(A, b, strategy=make_strategy("FEIR"),
                             scenario=scen, config=cfg)
        result = solver.solve(ideal_time=ideal.record.solve_time)
        assert result.record.converged
        assert result.record.faults_injected > 0
