"""Tests for the exponential-MTBE fault injector."""

import numpy as np
import pytest

from repro.faults.injector import ExponentialInjector, Injection, null_injector


class TestExponentialInjector:
    def test_rejects_nonpositive_mtbe(self):
        with pytest.raises(ValueError):
            ExponentialInjector(0.0)

    def test_sample_times_within_horizon(self):
        inj = ExponentialInjector(mtbe=1.0, rng=1)
        times = inj.sample_times(10.0)
        assert all(0.0 <= t < 10.0 for t in times)
        assert times == sorted(times)

    def test_sample_times_empty_horizon(self):
        inj = ExponentialInjector(mtbe=1.0, rng=1)
        assert inj.sample_times(0.0) == []

    def test_mean_rate_roughly_matches_mtbe(self):
        inj = ExponentialInjector(mtbe=0.5, rng=12345)
        times = inj.sample_times(2000.0)
        # 4000 expected; allow a generous statistical margin.
        assert 3300 < len(times) < 4700

    def test_deterministic_given_seed(self):
        a = ExponentialInjector(mtbe=2.0, rng=7).sample_times(50.0)
        b = ExponentialInjector(mtbe=2.0, rng=7).sample_times(50.0)
        assert a == b

    def test_schedule_targets_registered_pages(self):
        pages = [("x", 0), ("x", 1), ("g", 0)]
        inj = ExponentialInjector(mtbe=0.3, rng=3)
        schedule = inj.schedule(20.0, pages)
        assert len(schedule) > 0
        for item in schedule:
            assert isinstance(item, Injection)
            assert (item.vector, item.page) in pages

    def test_schedule_empty_pages(self):
        inj = ExponentialInjector(mtbe=0.3, rng=3)
        assert inj.schedule(20.0, []) == []

    def test_expected_errors(self):
        inj = ExponentialInjector(mtbe=2.0, rng=0)
        assert inj.expected_errors(10.0) == pytest.approx(5.0)

    def test_from_normalized_rate(self):
        inj = ExponentialInjector.from_normalized_rate(rate=5.0, ideal_time=10.0)
        assert inj.mtbe == pytest.approx(2.0)

    def test_from_normalized_rate_zero_gives_null(self):
        inj = ExponentialInjector.from_normalized_rate(rate=0.0, ideal_time=10.0)
        assert inj.sample_times(100.0) == []
        assert inj.expected_errors(100.0) == 0.0

    def test_from_normalized_rate_validation(self):
        with pytest.raises(ValueError):
            ExponentialInjector.from_normalized_rate(rate=-1.0, ideal_time=1.0)
        with pytest.raises(ValueError):
            ExponentialInjector.from_normalized_rate(rate=1.0, ideal_time=0.0)

    def test_null_injector(self):
        inj = null_injector()
        assert inj.sample_times(1e9) == []


class TestPageTargetingDistribution:
    def test_uniform_page_selection(self):
        """Pages should be hit roughly uniformly (paper: uniform distribution)."""
        pages = [("v", p) for p in range(8)]
        inj = ExponentialInjector(mtbe=0.01, rng=99)
        schedule = inj.schedule(50.0, pages)
        counts = np.zeros(8)
        for item in schedule:
            counts[item.page] += 1
        assert len(schedule) > 1000
        # Each page should receive between 60% and 140% of the mean share.
        mean = counts.mean()
        assert np.all(counts > 0.6 * mean)
        assert np.all(counts < 1.4 * mean)
