"""Integration tests for the experiment drivers (scaled-down configurations)."""

import math

import pytest

from repro.experiments.common import ExperimentConfig, build_problem, run_ideal
from repro.experiments.fig3 import format_fig3, run_fig3
from repro.experiments.fig4 import format_fig4, run_fig4
from repro.experiments.fig5 import (format_fig5, format_fig5_measured,
                                    run_fig5, run_fig5_measured)
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3


#: A small but representative subset so the driver tests stay quick.
SMALL_MATRICES = ("qa8fm", "Dubcova3")


def quick_config(**overrides):
    defaults = dict(matrices=SMALL_MATRICES, repetitions=1,
                    tolerance=1e-8, max_iterations=8000)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestCommon:
    def test_build_problem_shapes(self):
        config = quick_config()
        A, b = build_problem("qa8fm", config)
        assert A.shape[0] == b.shape[0]

    def test_run_ideal_converges(self):
        config = quick_config()
        A, b = build_problem("qa8fm", config)
        result = run_ideal(A, b, config, matrix_name="qa8fm")
        assert result.converged
        assert result.solve_time > 0


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(quick_config())

    def test_all_methods_reported(self, result):
        assert set(result.overheads) == {"Lossy", "Trivial", "AFEIR", "FEIR",
                                         "ckpt-1000", "ckpt-200"}

    def test_paper_ordering_holds(self, result):
        ov = result.overheads
        assert ov["Lossy"] == pytest.approx(0.0, abs=1e-6)
        assert ov["Trivial"] == pytest.approx(0.0, abs=1e-6)
        assert ov["AFEIR"] < ov["FEIR"]
        assert ov["FEIR"] < ov["ckpt-1000"] < ov["ckpt-200"]

    def test_formatting(self, result):
        text = format_table2(result)
        assert "Table 2" in text and "AFEIR" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3(quick_config())

    def test_feir_has_more_imbalance_than_afeir(self, result):
        assert result.increases["FEIR"]["imbalance"] > \
            result.increases["AFEIR"]["imbalance"]

    def test_runtime_share_increases(self, result):
        assert result.increases["FEIR"]["runtime"] > 0
        assert result.increases["AFEIR"]["runtime"] > 0

    def test_formatting(self, result):
        assert "Table 3" in format_table3(result)


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(quick_config(), matrix="Dubcova3", page=2)

    def test_all_curves_present(self, result):
        assert set(result.histories) == {"Ideal", "AFEIR", "FEIR", "Lossy",
                                         "ckpt"}

    def test_exact_recoveries_close_to_ideal(self, result):
        ideal = result.final_times["Ideal"]
        assert result.final_times["FEIR"] <= 1.2 * ideal
        assert result.final_times["AFEIR"] <= 1.2 * ideal

    def test_ckpt_and_lossy_slower_than_exact(self, result):
        assert result.final_times["Lossy"] > result.final_times["AFEIR"]
        assert result.final_times["ckpt"] > result.final_times["AFEIR"]

    def test_injection_fraction_validation(self):
        with pytest.raises(ValueError):
            run_fig3(quick_config(), inject_fraction=1.5)

    def test_formatting(self, result):
        assert "Figure 3" in format_fig3(result)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(quick_config(), rates=(1.0, 10.0),
                        matrices=("qa8fm",),
                        methods=("AFEIR", "FEIR", "Lossy", "ckpt"))

    def test_summary_grid_complete(self, result):
        assert set(result.summary) == {(m, r) for m in
                                       ("AFEIR", "FEIR", "Lossy", "ckpt")
                                       for r in (1.0, 10.0)}

    def test_exact_methods_beat_checkpoint(self, result):
        # At rate 10 every trial sees faults, so the paper's ordering is
        # deterministic; at rate 1 a single repetition may legitimately
        # draw zero in-solve faults (zero overhead for restart/rollback
        # methods), so there we only pin the exact methods' small cost.
        assert result.summary[("FEIR", 10.0)] < result.summary[("ckpt", 10.0)]
        assert result.summary[("AFEIR", 10.0)] < result.summary[("ckpt", 10.0)]
        assert result.summary[("FEIR", 1.0)] < 25.0
        assert result.summary[("AFEIR", 1.0)] < 25.0

    def test_cells_have_statistics(self, result):
        for cell in result.cells:
            assert cell.mean_slowdown >= 0.0 or math.isnan(cell.mean_slowdown)
            assert cell.std_slowdown >= 0.0
            assert len(cell.runs) == 1

    def test_formatting(self, result):
        text = format_fig4(result)
        assert "Figure 4" in text and "rate 10" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(core_counts=(64, 256), error_counts=(1,),
                        calibration_points=12, target_points=256)

    def test_speedup_reference_is_one(self, result):
        assert result.speedup("Ideal", 64, 0) == pytest.approx(1.0)

    def test_exact_methods_scale_best(self, result):
        assert result.speedup("FEIR", 256, 1) > result.speedup("ckpt", 256, 1)

    def test_formatting(self, result):
        text = format_fig5(result)
        assert "Figure 5" in text and "parallel efficiency" in text


@pytest.mark.ranks
class TestFig5Measured:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5_measured(ranks=(1, 2), points=8,
                                 methods=("ideal", "AFEIR"))

    def test_grid_complete(self, result):
        assert {(r.ranks, r.method) for r in result.rows} == \
            {(1, "ideal"), (1, "AFEIR"), (2, "ideal"), (2, "AFEIR")}

    def test_single_rank_moves_no_halo(self, result):
        for row in result.rows:
            if row.ranks == 1:
                assert row.measured_halo_ms == 0.0
                assert row.model_halo_ms == 0.0
                assert row.halo_bytes == 0

    def test_multi_rank_measures_real_communication(self, result):
        for row in result.rows:
            if row.ranks > 1:
                assert row.halo_exchanges >= row.iterations
                assert row.measured_halo_ms > 0.0
                assert row.model_halo_ms > 0.0
                assert row.halo_bytes > 0

    def test_recovery_lands_on_a_rank(self, result):
        afeir_multi = [r for r in result.rows
                       if r.method == "AFEIR" and r.ranks > 1]
        assert any(r.recoveries_by_rank for r in afeir_multi)

    def test_calibration_produced(self, result):
        assert result.fitted_latency > 0
        assert result.fitted_bandwidth > 0
        assert result.calibrated_comm_per_iter_1024 > 0
        assert result.default_comm_per_iter_1024 > 0

    def test_formatting(self, result):
        text = format_fig5_measured(result)
        assert "Figure 5, measured" in text
        assert "halo us/ex (meas)" in text
        assert "fitted" in text
