"""The unified runtime's equivalence matrix.

The repo's central invariant, stated over the composed runtime of
:mod:`repro.runtime.runtime`: every (scheduler x placement x clock)
cell — including the cells the old ``backend=``/``ranks=`` convention
could not express, such as threaded scheduling over rank-sharded
kernels — produces bit-identical iterates, solve times and recovery
decisions, and byte-identical campaign fingerprints.
"""

from __future__ import annotations

import pytest

from repro.core.manager import make_strategy
from repro.campaign.engine import clear_caches, run_campaign
from repro.campaign.executors import SerialExecutor
from repro.campaign.spec import CampaignSpec, SolverKnobs
from repro.faults.injector import Injection
from repro.faults.scenarios import multi_error_scenario
from repro.matrices.sparse import SparseOperator
from repro.matrices.stencil import poisson_2d_5pt, stencil_rhs
from repro.runtime.runtime import (RuntimeSpec, make_runtime,
                                   resolve_runtime_spec)
from repro.solvers.resilient_cg import ResilientCG, SolverConfig

pytestmark = pytest.mark.ranks

PAGE = 16

#: Every runtime cell exercised by the matrix, as (scheduler, placement,
#: clock, ranks).  The first entry is the reference cell every other one
#: must match bit for bit; the (threaded, ranks, *) cells are the ones
#: the pre-unification runtime rejected outright.
CELLS = [
    ("list", "local", "simulated", 1),
    ("list", "local", "wall", 1),
    ("list", "ranks", "simulated", 2),
    ("list", "ranks", "simulated", 3),
    ("list", "ranks", "wall", 4),
    ("list", "ranks", "wall", 1),
    ("threaded", "local", "simulated", 1),
    ("threaded", "local", "wall", 1),
    ("threaded", "ranks", "simulated", 2),
    ("threaded", "ranks", "wall", 2),
    ("threaded", "ranks", "wall", 4),
]


@pytest.fixture(scope="module")
def problem():
    A = poisson_2d_5pt(12)                        # n = 144, 9 pages of 16
    b = stencil_rhs(A, kind="random", seed=11)
    return A, b


@pytest.fixture(scope="module")
def sparse_problem(problem):
    A, b = problem
    return SparseOperator.from_scipy(A), b


def cell_config(scheduler, placement, clock, ranks):
    return SolverConfig(page_size=PAGE, tolerance=1e-8, num_workers=4,
                        pace=0.0, scheduler=scheduler, placement=placement,
                        clock=clock, ranks=ranks)


def solve_cell(A, b, method, cell, tau=None):
    scheduler, placement, clock, ranks = cell
    strategy = make_strategy(method) if method else None
    scenario = None
    if method:
        scenario = multi_error_scenario(
            [Injection(time=0.0002, vector="x", page=4)],
            name=f"matrix-{method}")
    with ResilientCG(A, b, strategy=strategy, scenario=scenario,
                     config=cell_config(*cell)) as solver:
        return solver.solve(ideal_time=tau)


def result_key(res):
    """Everything a cell must reproduce bit for bit."""
    return (res.x.tobytes(), res.record.iterations, res.record.solve_time,
            res.record.final_residual, res.stats.pages_recovered,
            res.stats.pages_unrecoverable, res.stats.contributions_skipped,
            res.stats.restarts, res.stats.rollbacks)


class TestSpecResolution:
    def test_legacy_backends_resolve_to_their_cells(self):
        assert resolve_runtime_spec(backend="simulated") == RuntimeSpec(
            scheduler="list", placement="local", clock="simulated", ranks=1)
        assert resolve_runtime_spec(backend="threaded") == RuntimeSpec(
            scheduler="threaded", placement="local", clock="wall", ranks=1)

    def test_explicit_axes_override_the_alias(self):
        spec = resolve_runtime_spec(backend="threaded", clock="simulated")
        assert (spec.scheduler, spec.clock) == ("threaded", "simulated")

    def test_ranks_imply_the_ranks_placement(self):
        assert resolve_runtime_spec(ranks=3).placement == "ranks"

    def test_single_strip_rank_placement_is_a_cell(self):
        spec = resolve_runtime_spec(placement="ranks", ranks=1)
        assert spec.placement == "ranks" and spec.ranks == 1

    def test_local_placement_rejects_ranks_naming_the_axis(self):
        with pytest.raises(ValueError, match="placement"):
            resolve_runtime_spec(placement="local", ranks=2)

    def test_unknown_backend_message_names_the_axes(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_runtime_spec(backend="quantum")

    def test_axis_validation_names_the_factory(self):
        for kwargs in (dict(scheduler="magic"), dict(placement="cloud"),
                       dict(clock="sundial")):
            with pytest.raises(ValueError, match="make_runtime"):
                resolve_runtime_spec(**kwargs)

    def test_backend_alias_round_trips(self):
        assert resolve_runtime_spec(backend="simulated").backend_alias() \
            == "simulated"
        assert resolve_runtime_spec(backend="threaded").backend_alias() \
            == "threaded"
        assert resolve_runtime_spec(scheduler="threaded").backend_alias() \
            == "threaded+simulated"

    def test_reenactment_flags(self):
        assert not resolve_runtime_spec().runs_reenactment
        assert resolve_runtime_spec(clock="wall").runs_reenactment
        assert resolve_runtime_spec(scheduler="threaded",
                                    clock="simulated").runs_reenactment
        assert not resolve_runtime_spec(clock="simulated").measures_wall


class TestRuntimeFactory:
    def test_compose_and_close(self, problem):
        from repro.matrices.blocked import PageBlockedMatrix
        A, _ = problem
        blocked = PageBlockedMatrix(A, page_size=PAGE)
        with make_runtime(blocked, num_workers=4, scheduler="threaded",
                          placement="ranks", ranks=2, clock="wall",
                          pace=0.0) as rt:
            assert rt.executes_real and rt.measures_wall
            assert rt.engine.ranks == 2
            assert "threaded" in rt.describe()
            assert "ranks" in rt.describe()


class TestEquivalenceMatrix:
    """Bit-identical results across every cell, both matrix backends."""

    @pytest.mark.parametrize("method", ["FEIR", "AFEIR"])
    def test_all_cells_bit_identical_scipy(self, problem, method):
        A, b = problem
        reference = result_key(solve_cell(A, b, method, CELLS[0]))
        for cell in CELLS[1:]:
            assert result_key(solve_cell(A, b, method, cell)) == reference, \
                f"cell {cell} diverged from the reference cell"

    @pytest.mark.parametrize("method", ["FEIR", "AFEIR"])
    def test_all_cells_bit_identical_sparse_operator(self, sparse_problem,
                                                     method):
        A, b = sparse_problem
        reference = result_key(solve_cell(A, b, method, CELLS[0]))
        for cell in CELLS[1:]:
            assert result_key(solve_cell(A, b, method, cell)) == reference, \
                f"cell {cell} diverged from the reference cell"

    def test_fault_free_cells_bit_identical(self, problem):
        A, b = problem
        reference = result_key(solve_cell(A, b, None, CELLS[0]))
        for cell in CELLS[1:]:
            assert result_key(solve_cell(A, b, None, cell)) == reference

    def test_threaded_ranks_wall_measures_halo_overlap(self, problem):
        """The unexpressible cell's payoff: AFEIR's recovery scan
        measurably overlaps the halo exchange; FEIR's never does."""
        A, b = problem
        afeir = solve_cell(A, b, "AFEIR", ("threaded", "ranks", "wall", 2))
        feir = solve_cell(A, b, "FEIR", ("threaded", "ranks", "wall", 2))
        assert afeir.window_summary["halo_overlapped_recoveries"] > 0
        assert feir.window_summary["halo_overlapped_recoveries"] == 0

    def test_simulated_clock_reports_no_wall_data(self, problem):
        A, b = problem
        res = solve_cell(A, b, "AFEIR", ("threaded", "ranks", "simulated", 2))
        assert res.wall_clock == 0.0
        # the re-enactment still ran (races exercised), it just isn't
        # reported: the monitor saw one run per iteration
        assert res.window_summary["runs"] == res.record.iterations


def matrix_campaign_spec():
    return CampaignSpec(
        matrices=["laplacian2d:10"], methods=("FEIR", "AFEIR"),
        rates=(2.0,), repetitions=1, seed=42,
        knobs=SolverKnobs(tolerance=1e-8, max_iterations=2000,
                          num_workers=4, page_size=20),
        name="runtime-matrix")


class TestCampaignFingerprints:
    """Campaign fingerprints are byte-identical across runtime cells."""

    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        clear_caches()
        yield
        clear_caches()

    def test_fingerprints_identical_across_cells(self):
        cells = [
            dict(),                                        # reference
            dict(scheduler="threaded", clock="simulated", pace=0.0),
            dict(ranks=2, pace=0.0),
            dict(scheduler="threaded", placement="ranks", ranks=2,
                 clock="wall", pace=0.0),
        ]
        fingerprints = []
        for knob_overrides in cells:
            clear_caches()
            spec = matrix_campaign_spec()
            spec = CampaignSpec(
                matrices=spec.matrices, methods=spec.methods,
                rates=spec.rates, repetitions=spec.repetitions,
                seed=spec.seed, name=spec.name,
                knobs=SolverKnobs(tolerance=1e-8, max_iterations=2000,
                                  num_workers=4, page_size=20,
                                  **knob_overrides))
            result = run_campaign(spec, executor=SerialExecutor())
            fingerprints.append(result.fingerprint())
        assert len(set(fingerprints)) == 1, \
            f"fingerprints diverged across cells: {fingerprints}"


@pytest.mark.stress
class TestRaceStress:
    """Repeat the hardest cell to shake out scheduling races."""

    @pytest.mark.parametrize("repeat", range(5))
    def test_threaded_ranks_repeats_stay_bit_identical(self, problem, repeat):
        A, b = problem
        reference = result_key(solve_cell(A, b, "AFEIR", CELLS[0]))
        cell = ("threaded", "ranks", "wall", 3)
        assert result_key(solve_cell(A, b, "AFEIR", cell)) == reference
