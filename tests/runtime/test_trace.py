"""Tests for execution traces and the per-state accounting of Table 3."""

import pytest

from repro.runtime.task import ScheduledTask, TaskKind
from repro.runtime.trace import ExecutionTrace, StateBreakdown


def make_trace(tasks, workers=2, end=None):
    last = max((t.end for t in tasks), default=0.0)
    return ExecutionTrace.from_schedule(tasks, num_workers=workers,
                                        start=0.0, end=end if end else last)


class TestStateBreakdown:
    def test_fractions_sum_to_one(self):
        b = StateBreakdown(useful=3.0, runtime=1.0, idle=2.0)
        fractions = b.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fractions_of_empty_breakdown(self):
        assert all(v == 0.0 for v in StateBreakdown().fractions().values())

    def test_add_accumulates(self):
        a = StateBreakdown(useful=1.0)
        a.add(StateBreakdown(useful=2.0, idle=1.0))
        assert a.useful == 3.0 and a.idle == 1.0

    def test_increase_over_baseline(self):
        base = StateBreakdown(useful=8.0, runtime=1.0, idle=1.0)
        other = StateBreakdown(useful=8.0, runtime=1.0, idle=3.0)
        increase = other.increase_over(base)
        assert increase["idle"] > 0
        assert increase["useful"] < 0   # share shrinks when idle grows


class TestExecutionTrace:
    def test_accounts_overhead_as_runtime(self):
        tasks = [ScheduledTask("a", 0, 0.0, 1.1, TaskKind.COMPUTE, overhead=0.1)]
        trace = make_trace(tasks, workers=1)
        assert trace.breakdown.runtime == pytest.approx(0.1)
        assert trace.breakdown.useful == pytest.approx(1.0)

    def test_idle_fills_unused_worker_time(self):
        tasks = [ScheduledTask("a", 0, 0.0, 1.0, TaskKind.COMPUTE)]
        trace = make_trace(tasks, workers=2)
        assert trace.breakdown.idle == pytest.approx(1.0)

    def test_kind_routing(self):
        tasks = [
            ScheduledTask("r", 0, 0.0, 1.0, TaskKind.RECOVERY),
            ScheduledTask("c", 1, 0.0, 1.0, TaskKind.CHECKPOINT),
            ScheduledTask("m", 0, 1.0, 2.0, TaskKind.COMMUNICATION),
            ScheduledTask("s", 1, 1.0, 2.0, TaskKind.REDUCTION),
        ]
        trace = make_trace(tasks, workers=2)
        b = trace.breakdown
        assert b.recovery == pytest.approx(1.0)
        assert b.checkpoint == pytest.approx(1.0)
        assert b.communication == pytest.approx(1.0)
        assert b.useful == pytest.approx(1.0)

    def test_accumulate_traces(self):
        t1 = make_trace([ScheduledTask("a", 0, 0.0, 1.0, TaskKind.COMPUTE)],
                        workers=1)
        t2 = make_trace([ScheduledTask("b", 0, 0.0, 2.0, TaskKind.COMPUTE)],
                        workers=1)
        t1.accumulate(t2)
        assert t1.breakdown.useful == pytest.approx(3.0)
        assert t1.wall_time == pytest.approx(3.0)
        assert t1.task_count == 2

    def test_accumulate_worker_mismatch(self):
        t1 = ExecutionTrace(num_workers=2)
        t2 = ExecutionTrace(num_workers=4)
        with pytest.raises(ValueError):
            t1.accumulate(t2)

    def test_utilization(self):
        tasks = [ScheduledTask("a", 0, 0.0, 1.0, TaskKind.COMPUTE)]
        trace = make_trace(tasks, workers=2)
        assert trace.utilization() == pytest.approx(0.5)

    def test_copy_is_independent(self):
        trace = make_trace([ScheduledTask("a", 0, 0.0, 1.0, TaskKind.COMPUTE)],
                           workers=1)
        clone = trace.copy()
        clone.breakdown.useful += 5.0
        assert trace.breakdown.useful == pytest.approx(1.0)
