"""Tests for the execution backends: protocol, threaded runtime, monitor."""

import threading
import time

import pytest

from repro.runtime.async_exec import (PageLockTable, ThreadedBackend,
                                      VulnerableWindowMonitor)
from repro.runtime.backend import (BACKEND_NAMES, ExecutionResult,
                                   SimulatedBackend, WallInterval,
                                   make_backend)
from repro.runtime.cost_model import CostModel
from repro.runtime.graph import TaskGraph
from repro.runtime.task import TaskKind

NO_OVERHEAD = CostModel(task_overhead=0.0)


@pytest.fixture
def threaded():
    backend = ThreadedBackend(4, cost_model=NO_OVERHEAD, pace=0.0)
    yield backend
    backend.close()


def diamond_graph(log, lock):
    """a -> (b, c) -> d, each action recording its name thread-safely."""
    graph = TaskGraph()

    def record(name):
        def action():
            with lock:
                log.append(name)
            return name
        return action

    graph.add_task("a", 0.0, action=record("a"))
    graph.add_task("b", 0.0, deps=["a"], action=record("b"))
    graph.add_task("c", 0.0, deps=["a"], action=record("c"))
    graph.add_task("d", 0.0, deps=["b", "c"], action=record("d"))
    return graph


class TestFactoryAndProtocol:
    def test_make_backend_names(self):
        assert isinstance(make_backend("simulated", 2), SimulatedBackend)
        backend = make_backend("threaded", 2)
        assert isinstance(backend, ThreadedBackend)
        backend.close()

    def test_make_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_backend("quantum", 2)
        assert set(BACKEND_NAMES) == {"simulated", "threaded"}

    def test_simulated_backend_replays_actions_in_launch_order(self):
        log, lock = [], threading.Lock()
        result = SimulatedBackend(2, cost_model=NO_OVERHEAD).run(
            diamond_graph(log, lock))
        assert log[0] == "a" and log[-1] == "d"
        assert sorted(log) == ["a", "b", "c", "d"]
        assert not result.executed_real
        assert result.values["b"] == "b"

    def test_simulated_and_threaded_schedules_match(self, threaded):
        graph = TaskGraph()
        graph.add_task("a", 1.0)
        graph.add_task("b", 2.0, deps=["a"])
        sim = SimulatedBackend(4, cost_model=NO_OVERHEAD).run(graph)
        real = threaded.run(graph)
        assert real.makespan == sim.makespan
        assert real.order_started() == sim.order_started()
        assert real.executed_real

    def test_execution_result_delegates_schedule_queries(self, threaded):
        graph = TaskGraph()
        graph.add_task("a", 1.0)
        result = threaded.run(graph)
        assert isinstance(result, ExecutionResult)
        assert result.start_of("a") == 0.0
        assert result.end_of("a") == pytest.approx(1.0)


class TestThreadedExecution:
    def test_dependencies_respected(self, threaded):
        log, lock = [], threading.Lock()
        for _ in range(5):
            del log[:]
            threaded.run(diamond_graph(log, lock))
            assert log[0] == "a" and log[-1] == "d"
            assert sorted(log) == ["a", "b", "c", "d"]

    def test_values_captured(self, threaded):
        graph = TaskGraph()
        graph.add_task("six", 0.0, action=lambda: 6)
        graph.add_task("seven", 0.0, action=lambda: 7)
        result = threaded.run(graph)
        assert result.values == {"six": 6, "seven": 7}

    @pytest.mark.stress
    def test_independent_tasks_really_overlap(self, threaded):
        # Timing-dependent (a starved runner can serialise the threads),
        # hence stress-marked and run in the quarantined CI job.
        graph = TaskGraph()
        for name in ("s0", "s1"):
            graph.add_task(name, 0.0, action=lambda: time.sleep(0.05))
        result = threaded.run(graph)
        assert result.overlapped("s0", "s1")
        assert result.wall_time < 0.098  # strictly less than serial

    def test_priority_orders_dispatch_with_one_thread(self):
        backend = ThreadedBackend(1, cost_model=NO_OVERHEAD, max_threads=1,
                                  pace=0.0)
        try:
            log, lock = [], threading.Lock()

            def record(name):
                def action():
                    with lock:
                        log.append(name)
                return action

            graph = TaskGraph()
            graph.add_task("low", 0.0, priority=-1, action=record("low"))
            graph.add_task("high", 0.0, priority=5, action=record("high"))
            graph.add_task("mid", 0.0, priority=0, action=record("mid"))
            backend.run(graph)
            assert log == ["high", "mid", "low"]
        finally:
            backend.close()

    def test_exceptions_propagate(self, threaded):
        graph = TaskGraph()

        def boom():
            raise RuntimeError("task exploded")

        graph.add_task("ok", 0.0, action=lambda: None)
        graph.add_task("bad", 0.0, deps=["ok"], action=boom)
        with pytest.raises(RuntimeError, match="task exploded"):
            threaded.run(graph)
        # The pool must survive a failed run.
        result = threaded.run(TaskGraph())
        assert result.wall_time == 0.0

    def test_pace_stretches_execution_to_simulated_durations(self):
        backend = ThreadedBackend(2, cost_model=NO_OVERHEAD, pace=1.0)
        try:
            graph = TaskGraph()
            graph.add_task("a", 0.02)
            graph.add_task("b", 0.02, deps=["a"])
            result = backend.run(graph)
            assert result.wall_time >= 0.04  # two paced tasks in sequence
        finally:
            backend.close()

    @pytest.mark.stress
    def test_recovery_overlaps_counts_cross_thread_overlap(self, threaded):
        graph = TaskGraph()
        graph.add_task("work", 0.0, kind=TaskKind.COMPUTE,
                       action=lambda: time.sleep(0.05))
        graph.add_task("r", 0.0, kind=TaskKind.RECOVERY, priority=-1,
                       action=lambda: time.sleep(0.05))
        result = threaded.run(graph)
        assert result.recovery_overlaps() == 1

    def test_measured_breakdown_accounts_by_kind(self, threaded):
        graph = TaskGraph()
        graph.add_task("work", 0.0, action=lambda: time.sleep(0.02))
        graph.add_task("r", 0.0, kind=TaskKind.RECOVERY,
                       deps=["work"], action=lambda: time.sleep(0.02))
        result = threaded.run(graph)
        breakdown = result.measured_breakdown(threaded.thread_count)
        assert breakdown.useful >= 0.015
        assert breakdown.recovery >= 0.015
        assert breakdown.idle >= 0.0


class TestPageLocks:
    def test_same_page_tasks_serialise(self, threaded):
        counter = {"value": 0}

        def racy_increment():
            seen = counter["value"]
            time.sleep(0.01)          # widen the race window
            counter["value"] = seen + 1

        graph = TaskGraph()
        for i in range(4):
            graph.add_task(f"t{i}", 0.0, page=7, action=racy_increment)
        result = threaded.run(graph)
        assert counter["value"] == 4
        intervals = list(result.wall_intervals.values())
        for i, a in enumerate(intervals):
            for b in intervals[i + 1:]:
                assert not a.overlaps(b)

    @pytest.mark.stress
    def test_different_pages_do_not_serialise(self, threaded):
        graph = TaskGraph()
        graph.add_task("p0", 0.0, page=0, action=lambda: time.sleep(0.05))
        graph.add_task("p1", 0.0, page=1, action=lambda: time.sleep(0.05))
        result = threaded.run(graph)
        assert result.overlapped("p0", "p1")

    def test_lock_table_reuses_locks(self):
        table = PageLockTable()
        assert table.lock_for(3) is table.lock_for(3)
        assert table.lock_for(3) is not table.lock_for(4)
        assert len(table) == 2


class TestVulnerableWindowMonitor:
    def test_records_windows_and_dues(self):
        monitor = VulnerableWindowMonitor()
        monitor.record_window("r2->beta", 1.0, 1.5)
        monitor.record_window("degenerate", 2.0, 2.0)   # ignored
        monitor.note_due("g", 3, sim_time=1.2, point="A", in_window=True)
        monitor.note_due("x", 1, sim_time=0.1, point="A", in_window=False)
        summary = monitor.summary()
        assert summary["windows"] == 1
        assert summary["total_window"] == pytest.approx(0.5)
        assert summary["dues_observed"] == 2
        assert summary["dues_in_window"] == 1
        assert monitor.dues_in_window == 1

    def test_observe_measures_pairs_and_overlap(self):
        monitor = VulnerableWindowMonitor()
        schedule_graph = TaskGraph()
        schedule_graph.add_task("r2_1", 0.0, kind=TaskKind.RECOVERY)
        schedule_graph.add_task("rho1:0", 0.0, kind=TaskKind.REDUCTION)
        schedule_graph.add_task("beta1", 0.0, kind=TaskKind.REDUCTION)
        backend = SimulatedBackend(2, cost_model=NO_OVERHEAD)
        result = backend.run(schedule_graph)
        result.executed_real = True
        result.wall_intervals = {
            "r2_1": WallInterval(0.0, 0.4, worker=1),
            "rho1:0": WallInterval(0.0, 0.6, worker=0),
            "beta1": WallInterval(0.7, 0.8, worker=0),
        }
        monitor.observe(result, (("r2_1", "beta1"),))
        summary = monitor.summary()
        assert summary["overlapped_recoveries"] == 1
        assert summary["windows"] == 1
        assert summary["total_window"] == pytest.approx(0.3)
        assert summary["concurrency_observed"]

    def test_thread_safe_scan_recording(self):
        monitor = VulnerableWindowMonitor()
        threads = [threading.Thread(
            target=lambda: [monitor.record_scan("r1", 1) for _ in range(100)])
            for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        summary = monitor.summary()
        assert summary["recovery_scans"] == 400
        assert summary["pages_seen_by_scans"] == 400
