"""Tests for the discrete-event list scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.cost_model import CostModel
from repro.runtime.graph import TaskGraph
from repro.runtime.scheduler import ListScheduler
from repro.runtime.task import TaskKind

#: Cost model with no per-task overhead, for exact makespan arithmetic.
NO_OVERHEAD = CostModel(task_overhead=0.0)


def scheduler(workers, overhead=False):
    return ListScheduler(workers, cost_model=CostModel() if overhead
                         else NO_OVERHEAD)


class TestBasicScheduling:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ListScheduler(0)

    def test_empty_graph(self):
        result = scheduler(4).run(TaskGraph())
        assert result.makespan == 0.0

    def test_single_task(self):
        graph = TaskGraph()
        graph.add_task("a", 2.0)
        result = scheduler(1).run(graph)
        assert result.makespan == pytest.approx(2.0)

    def test_chain_is_sequential(self):
        graph = TaskGraph()
        graph.add_task("a", 1.0)
        graph.add_task("b", 2.0, deps=["a"])
        graph.add_task("c", 3.0, deps=["b"])
        result = scheduler(8).run(graph)
        assert result.makespan == pytest.approx(6.0)

    def test_independent_tasks_run_in_parallel(self):
        graph = TaskGraph()
        for i in range(4):
            graph.add_task(f"t{i}", 1.0)
        result = scheduler(4).run(graph)
        assert result.makespan == pytest.approx(1.0)

    def test_more_tasks_than_workers(self):
        graph = TaskGraph()
        for i in range(4):
            graph.add_task(f"t{i}", 1.0)
        result = scheduler(2).run(graph)
        assert result.makespan == pytest.approx(2.0)

    def test_dependencies_are_respected(self):
        graph = TaskGraph()
        graph.add_task("a", 1.0)
        graph.add_task("b", 1.0, deps=["a"])
        result = scheduler(2).run(graph)
        assert result.start_of("b") >= result.end_of("a") - 1e-12

    def test_start_time_offset(self):
        graph = TaskGraph()
        graph.add_task("a", 1.0)
        result = scheduler(1).run(graph, start_time=10.0)
        assert result.start_of("a") == pytest.approx(10.0)
        assert result.makespan == pytest.approx(1.0)

    def test_priorities_order_ready_tasks(self):
        graph = TaskGraph()
        graph.add_task("low", 1.0, priority=-1)
        graph.add_task("high", 1.0, priority=5)
        result = scheduler(1).run(graph)
        assert result.start_of("high") < result.start_of("low")

    def test_actions_execute_in_start_order(self):
        order = []
        graph = TaskGraph()
        graph.add_task("a", 1.0, action=lambda: order.append("a"))
        graph.add_task("b", 1.0, deps=["a"], action=lambda: order.append("b"))
        scheduler(2).run(graph)
        assert order == ["a", "b"]

    def test_trace_and_replay_agree_on_equal_start_ties(self):
        """Regression: two equal-priority tasks starting at the same time.

        The action replay runs in launch order (insertion order for ties)
        while ``order_started()`` used to sort ties by task *name* — so a
        graph whose insertion order differs from its name order made the
        trace and the numerical replay disagree.  They must be identical.
        """
        order = []
        graph = TaskGraph()
        # Insertion order ("b" first) deliberately differs from name order.
        graph.add_task("b", 1.0, action=lambda: order.append("b"))
        graph.add_task("a", 1.0, action=lambda: order.append("a"))
        result = scheduler(2).run(graph)
        assert result.start_of("a") == result.start_of("b")
        assert order == ["b", "a"]
        assert result.order_started() == order

    def test_order_started_fallback_sorts_by_launch_seq(self):
        """Without the stored launch order the sort falls back to the
        scheduler-assigned sequence numbers, not names."""
        graph = TaskGraph()
        graph.add_task("b", 1.0)
        graph.add_task("a", 1.0)
        result = scheduler(2).run(graph)
        result.started = None
        assert result.order_started() == ["b", "a"]

    def test_actions_can_be_disabled(self):
        called = []
        graph = TaskGraph()
        graph.add_task("a", 1.0, action=lambda: called.append(1))
        scheduler(1).run(graph, execute_actions=False)
        assert called == []

    def test_overhead_charged_per_task(self):
        cm = CostModel(task_overhead=0.5)
        graph = TaskGraph()
        graph.add_task("a", 1.0)
        graph.add_task("b", 1.0, deps=["a"])
        result = ListScheduler(1, cost_model=cm).run(graph)
        assert result.makespan == pytest.approx(3.0)

    def test_trace_accounts_for_idle_time(self):
        graph = TaskGraph()
        graph.add_task("long", 4.0)
        graph.add_task("short", 1.0)
        result = scheduler(2).run(graph)
        breakdown = result.trace.breakdown
        assert breakdown.idle == pytest.approx(3.0)
        assert breakdown.useful == pytest.approx(5.0)

    def test_recovery_tasks_tracked_separately(self):
        graph = TaskGraph()
        graph.add_task("r", 2.0, kind=TaskKind.RECOVERY)
        result = scheduler(1).run(graph)
        assert result.trace.breakdown.recovery == pytest.approx(2.0)
        assert result.trace.breakdown.useful == pytest.approx(0.0)


class TestSchedulerInvariants:
    @given(durations=st.lists(st.floats(0.01, 5.0), min_size=1, max_size=20),
           workers=st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_makespan_bounds(self, durations, workers):
        """Greedy list schedules respect the classic lower/upper bounds."""
        graph = TaskGraph()
        for i, dur in enumerate(durations):
            graph.add_task(f"t{i}", dur)
        result = scheduler(workers).run(graph)
        total = sum(durations)
        lower = max(total / workers, max(durations))
        assert result.makespan >= lower - 1e-9
        assert result.makespan <= total + 1e-9
        # No worker executes two tasks at once.
        by_worker = {}
        for st_task in result.scheduled.values():
            by_worker.setdefault(st_task.worker, []).append(st_task)
        for tasks in by_worker.values():
            tasks.sort(key=lambda s: s.start)
            for first, second in zip(tasks, tasks[1:], strict=False):
                assert second.start >= first.end - 1e-9

    @given(workers=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_work_conservation(self, workers):
        """Busy time in the trace equals the sum of task durations."""
        graph = TaskGraph()
        durations = [0.5, 1.5, 2.0, 0.25, 1.0]
        for i, dur in enumerate(durations):
            graph.add_task(f"t{i}", dur)
        result = scheduler(workers).run(graph)
        breakdown = result.trace.breakdown
        busy = breakdown.useful + breakdown.recovery + breakdown.checkpoint \
            + breakdown.communication + breakdown.runtime
        assert busy == pytest.approx(sum(durations))
