"""Tests for the analytic cost model."""

import math

import pytest

from repro.config import PAGE_DOUBLES
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL


class TestKernelTimes:
    def test_kernel_time_is_roofline_max(self):
        cm = CostModel(flop_rate=10.0, mem_bandwidth=5.0)
        assert cm.kernel_time(20.0, 5.0) == pytest.approx(2.0)   # flop bound
        assert cm.kernel_time(5.0, 20.0) == pytest.approx(4.0)   # memory bound

    def test_kernel_time_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.kernel_time(-1.0, 0.0)

    def test_spmv_scales_with_nnz(self):
        cm = DEFAULT_COST_MODEL
        assert cm.spmv_block(10_000) > cm.spmv_block(1_000)

    def test_axpy_dot_positive(self):
        cm = DEFAULT_COST_MODEL
        assert cm.axpy_block() > 0
        assert cm.dot_block() > 0

    def test_block_solve_factorized_is_cheaper(self):
        cm = DEFAULT_COST_MODEL
        assert cm.block_solve(PAGE_DOUBLES, factorized=True) < \
            cm.block_solve(PAGE_DOUBLES, factorized=False)

    def test_block_solve_uses_dense_rate(self):
        slow = CostModel(dense_flop_rate=1e9)
        fast = CostModel(dense_flop_rate=100e9)
        assert slow.block_solve(512) > fast.block_solve(512)

    def test_recovery_check_is_small(self):
        cm = DEFAULT_COST_MODEL
        assert cm.recovery_check() < cm.block_solve(PAGE_DOUBLES)


class TestIOAndCommunication:
    def test_checkpoint_cost_increases_with_volume(self):
        cm = DEFAULT_COST_MODEL
        assert cm.checkpoint_write(1e8) > cm.checkpoint_write(1e6)
        assert cm.checkpoint_read(1e6) > 0

    def test_message_latency_floor(self):
        cm = DEFAULT_COST_MODEL
        assert cm.message(0.0) == pytest.approx(cm.network_latency)

    def test_allreduce_grows_logarithmically(self):
        cm = DEFAULT_COST_MODEL
        t2 = cm.allreduce(8.0, 2)
        t16 = cm.allreduce(8.0, 16)
        assert t16 == pytest.approx(t2 * math.log2(16))

    def test_allreduce_single_rank_is_free(self):
        assert DEFAULT_COST_MODEL.allreduce(8.0, 1) == 0.0

    def test_scaled_returns_modified_copy(self):
        cm = DEFAULT_COST_MODEL
        faster = cm.scaled(flop_rate=cm.flop_rate * 2)
        assert faster.flop_rate == cm.flop_rate * 2
        assert faster is not cm
        assert cm.flop_rate == DEFAULT_COST_MODEL.flop_rate
