"""Kernel-engine tests: the reproducible page-ordered reductions that
make single-rank and N-rank solves bit-identical."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrices.blocked import PageBlockedMatrix
from repro.matrices.stencil import poisson_2d_5pt
from repro.runtime.kernels import (LocalKernelEngine, make_kernel_engine,
                                   page_partials, paged_dot,
                                   reduce_partials)


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(5)
    n = 1000                            # ragged final page (1000 = 7*128+104)
    return rng.standard_normal(n), rng.standard_normal(n)


class TestPagedDot:
    def test_matches_page_loop_reference(self, vectors):
        u, v = vectors
        psize = 128
        parts = [float(np.add.reduce(u[s:s + psize] * v[s:s + psize]))
                 for s in range(0, u.size, psize)]
        assert paged_dot(u, v, psize) == float(np.add.reduce(np.array(parts)))
        assert paged_dot(u, v, psize) == pytest.approx(float(u @ v),
                                                       rel=1e-12)

    def test_skip_is_exact_not_cancellation(self, vectors):
        u, v = vectors
        psize = 128
        parts = page_partials(u, v, psize)
        kept = parts.copy()
        kept[[1, 3]] = 0.0
        assert paged_dot(u, v, psize, {1, 3}) == \
            float(np.add.reduce(kept))
        # Out-of-range skip pages are ignored, matching the solver's
        # tolerance for stale page ids.
        assert paged_dot(u, v, psize, {999}) == paged_dot(u, v, psize)

    def test_strip_partials_equal_global_partials(self, vectors):
        """The bit-identity guarantee: partials computed per page-aligned
        strip are the same bits as partials of the whole array."""
        u, v = vectors
        psize = 128
        whole = page_partials(u, v, psize)
        bounds = [0, 256, 512, 768, 1000]
        stitched = np.concatenate([page_partials(u[a:b], v[a:b], psize)
                                   for a, b in zip(bounds, bounds[1:], strict=False)])
        assert np.array_equal(whole, stitched)

    def test_reduce_partials_order_fixed(self):
        parts = np.array([1e16, 1.0, -1e16, 2.0])
        assert reduce_partials(parts) == float(np.add.reduce(parts))
        assert reduce_partials(parts, {0, 2}) == 3.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            page_partials(np.zeros(4), np.zeros(5), 2)


class TestLocalKernelEngine:
    @pytest.fixture(scope="class")
    def setup(self):
        A = poisson_2d_5pt(20)          # n = 400
        blocked = PageBlockedMatrix(A, page_size=64)
        rng = np.random.default_rng(9)
        return blocked, rng.standard_normal(400)

    def test_spmv_and_residual(self, setup):
        blocked, d = setup
        engine = LocalKernelEngine(blocked.A, blocked.n, blocked.page_size)
        out = np.zeros(blocked.n)
        engine.spmv(d, out)
        assert np.array_equal(out, blocked.A @ d)
        b = np.ones(blocked.n)
        res = np.zeros(blocked.n)
        engine.residual(d, b, res)
        assert np.array_equal(res, b - blocked.A @ d)

    def test_update_direction_and_axpy(self, setup):
        blocked, d = setup
        engine = LocalKernelEngine(blocked.A, blocked.n, blocked.page_size)
        z = np.arange(blocked.n, dtype=float)
        d_cur = np.zeros(blocked.n)
        engine.update_direction(d_cur, z, 0.5, d)
        assert np.array_equal(d_cur, z + 0.5 * d)
        y = np.ones(blocked.n)
        engine.axpy(y, 2.0, z, skip_pages={1})
        sl = slice(64, 128)
        assert np.array_equal(y[sl], np.ones(64))        # skipped page
        assert np.array_equal(y[200:], 1.0 + 2.0 * z[200:])

    def test_run_on_owner_is_inline(self, setup):
        blocked, _ = setup
        engine = LocalKernelEngine(blocked.A, blocked.n, blocked.page_size)
        assert engine.run_on_owner(3, lambda: "done") == "done"
        assert engine.comm_stats() is None

    def test_factory_validation(self, setup):
        blocked, _ = setup
        with pytest.raises(ValueError):
            make_kernel_engine(blocked, ranks=0)
        engine = make_kernel_engine(blocked, ranks=1)
        assert isinstance(engine, LocalKernelEngine)
