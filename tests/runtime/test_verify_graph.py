"""The structural happens-before verifier (`verify_graph`).

Unit races on hand-built graphs, the REPRO_VERIFY_GRAPHS backend wiring,
a sweep over real solver iteration graphs for every runtime cell, and
the regression the verifier exists for: deliberately dropping the
halo-exchange dependency edge must raise a race naming both tasks.
"""

from __future__ import annotations

import pytest

from repro.core.manager import make_strategy
from repro.faults.injector import Injection
from repro.faults.scenarios import multi_error_scenario
from repro.matrices.stencil import poisson_2d_5pt, stencil_rhs
from repro.runtime.backend import SimulatedBackend
from repro.runtime.async_exec import ThreadedBackend
from repro.runtime.graph import (GraphRace, GraphRaceError, TaskGraph,
                                 VERIFY_GRAPHS_ENV, find_races,
                                 verification_enabled, verify_graph)
from repro.runtime.task import TaskKind
from repro.solvers.resilient_cg import ResilientCG, SolverConfig


def two_writer_graph():
    g = TaskGraph()
    g.add_task("a", 1.0, writes={"seg:v[0]"})
    g.add_task("b", 1.0, writes={"seg:v[0]"})
    return g


class TestFindRaces:
    def test_unordered_write_write_is_a_race(self):
        races = find_races(two_writer_graph())
        assert len(races) == 1
        race = races[0]
        assert {race.task_a, race.task_b} == {"a", "b"}
        assert race.access == "write/write"
        assert race.resource == "seg:v[0]"

    def test_dependency_path_clears_the_race(self):
        g = two_writer_graph()
        g.task("b").depends_on("a")
        assert find_races(g) == []

    def test_transitive_path_counts(self):
        g = two_writer_graph()
        g.add_task("mid", 1.0, deps=["a"])
        g.task("b").depends_on("mid")
        assert find_races(g) == []

    def test_unordered_read_write_is_a_race(self):
        g = TaskGraph()
        g.add_task("w", 1.0, writes={"seg:v[0]"})
        g.add_task("r", 1.0, reads={"seg:v[0]"})
        races = find_races(g)
        assert len(races) == 1 and races[0].access == "read/write"

    def test_concurrent_reads_are_fine(self):
        g = TaskGraph()
        g.add_task("r1", 1.0, reads={"seg:v[0]"})
        g.add_task("r2", 1.0, reads={"seg:v[0]"})
        assert find_races(g) == []

    def test_tasks_without_resources_are_exempt(self):
        # AFEIR's read-only recovery probe deliberately overlaps the
        # reduction; declaring nothing opts a task out of the check.
        g = TaskGraph()
        g.add_task("dq", 1.0, reads={"seg:d[0]"}, writes={"part:dq[0]"})
        g.add_task("r1", 1.0, kind=TaskKind.RECOVERY)
        assert find_races(g) == []

    def test_declared_page_is_an_implicit_write(self):
        g = TaskGraph()
        g.add_task("p1", 1.0, page=3)
        g.add_task("p2", 1.0, page=3)
        races = find_races(g)
        assert len(races) == 1 and races[0].resource == "page:3"
        g.task("p2").depends_on("p1")
        assert find_races(g) == []

    def test_different_pages_do_not_conflict(self):
        g = TaskGraph()
        g.add_task("p1", 1.0, page=3)
        g.add_task("p2", 1.0, page=4)
        assert find_races(g) == []

    def test_verify_graph_raises_with_both_names(self):
        with pytest.raises(GraphRaceError) as err:
            verify_graph(two_writer_graph())
        assert "'a'" in str(err.value) and "'b'" in str(err.value)
        assert err.value.races == [GraphRace("a", "b", "seg:v[0]", "write/write")]


class TestEnvWiring:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(VERIFY_GRAPHS_ENV, raising=False)
        assert not verification_enabled()
        SimulatedBackend(num_workers=2).run(two_writer_graph())  # no raise

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("0", False), ("", False), ("no", False)])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(VERIFY_GRAPHS_ENV, value)
        assert verification_enabled() is expected

    def test_simulated_backend_raises_when_enabled(self, monkeypatch):
        monkeypatch.setenv(VERIFY_GRAPHS_ENV, "1")
        with pytest.raises(GraphRaceError):
            SimulatedBackend(num_workers=2).run(two_writer_graph())
        with pytest.raises(GraphRaceError):
            SimulatedBackend(num_workers=2).execute(two_writer_graph())

    def test_threaded_backend_raises_when_enabled(self, monkeypatch):
        monkeypatch.setenv(VERIFY_GRAPHS_ENV, "1")
        with ThreadedBackend(num_workers=2) as backend:
            with pytest.raises(GraphRaceError):
                backend.execute(two_writer_graph())


# ----------------------------------------------------------------------
# real solver graphs
# ----------------------------------------------------------------------

PAGE = 16
CELLS = [
    ("list", "local", "simulated", 1),
    ("threaded", "local", "wall", 1),
    ("list", "ranks", "simulated", 2),
    ("list", "ranks", "wall", 2),
    ("threaded", "ranks", "wall", 2),
]


def make_solver(method="afeir", **overrides):
    A = poisson_2d_5pt(10)
    b = stencil_rhs(A, kind="random", seed=11)
    strategy = make_strategy(method) if method else None
    scenario = None
    if method:
        scenario = multi_error_scenario(
            [Injection(time=0.0002, vector="x", page=2)],
            name="verify-graph")
    config = SolverConfig(page_size=PAGE, tolerance=1e-8, num_workers=4,
                          pace=0.0, **overrides)
    return ResilientCG(A, b, strategy=strategy, scenario=scenario,
                       config=config)


@pytest.mark.ranks
class TestSolverGraphs:
    @pytest.mark.parametrize("cell", CELLS, ids=lambda c: "-".join(map(str, c)))
    @pytest.mark.parametrize("method", [None, "feir", "afeir", "checkpoint"])
    def test_every_cell_verifies_clean(self, monkeypatch, cell, method):
        """Every iteration graph the solver executes passes verify_graph."""
        monkeypatch.setenv(VERIFY_GRAPHS_ENV, "1")
        scheduler, placement, clock, ranks = cell
        with make_solver(method, scheduler=scheduler, placement=placement,
                         clock=clock, ranks=ranks) as solver:
            result = solver.solve(ideal_time=0.001 if method else None)
        assert result.record.converged

    def test_dropped_halo_edge_is_reported(self, monkeypatch):
        """The regression verify_graph exists for: lose the halo->spmv
        dependency in a refactor and the race is caught structurally,
        naming both the halo task and the spmv chunk."""
        monkeypatch.setenv(VERIFY_GRAPHS_ENV, "1")
        original = ResilientCG._add_halo_reenactment

        def drop_edge(self, graph, iteration, state, this_d):
            original(self, graph, iteration, state, this_d)
            halo_name = f"halo{iteration}"
            if halo_name in graph:
                for task in graph.tasks:
                    if task.name.startswith(f"q{iteration}:"):
                        task.deps.remove(halo_name)

        monkeypatch.setattr(ResilientCG, "_add_halo_reenactment", drop_edge)
        # The halo task only exists in the re-enactment graph, so pick a
        # cell that re-enacts (clock="wall"); the list scheduler keeps the
        # verifying path in SimulatedBackend.execute.
        with make_solver("afeir", scheduler="list", placement="ranks",
                         clock="wall", ranks=2) as solver:
            with pytest.raises(GraphRaceError) as err:
                solver.solve(ideal_time=0.001)
        race = err.value.races[0]
        assert race.resource == "halo:d"
        names = {race.task_a, race.task_b}
        assert any(n.startswith("halo") for n in names)
        assert any(":" in n and n.startswith("q") for n in names)
