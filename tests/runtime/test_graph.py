"""Tests for task graphs."""

import pytest

from repro.runtime.graph import TaskGraph
from repro.runtime.task import Task, TaskKind


def chain_graph(durations):
    graph = TaskGraph()
    prev = None
    for i, dur in enumerate(durations):
        deps = [prev] if prev else []
        graph.add_task(f"t{i}", dur, deps=deps)
        prev = f"t{i}"
    return graph


class TestTaskGraph:
    def test_add_and_lookup(self):
        graph = TaskGraph()
        graph.add_task("a", 1.0)
        assert "a" in graph
        assert graph.task("a").duration == 1.0

    def test_duplicate_name(self):
        graph = TaskGraph()
        graph.add_task("a", 1.0)
        with pytest.raises(ValueError):
            graph.add_task("a", 2.0)

    def test_unknown_task(self):
        with pytest.raises(KeyError):
            TaskGraph().task("missing")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Task(name="bad", duration=-1.0)

    def test_validate_unknown_dependency(self):
        graph = TaskGraph()
        graph.add_task("a", 1.0, deps=["ghost"])
        with pytest.raises(ValueError):
            graph.validate()

    def test_cycle_detection(self):
        graph = TaskGraph()
        graph.add_task("a", 1.0, deps=["b"])
        graph.add_task("b", 1.0, deps=["a"])
        with pytest.raises(ValueError):
            graph.topological_order()

    def test_topological_order_respects_deps(self):
        graph = TaskGraph()
        graph.add_task("a", 1.0)
        graph.add_task("b", 1.0, deps=["a"])
        graph.add_task("c", 1.0, deps=["a", "b"])
        order = graph.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_predecessors_and_successors(self):
        graph = TaskGraph()
        graph.add_task("a", 1.0)
        graph.add_task("b", 1.0, deps=["a"])
        assert graph.predecessors("b") == ["a"]
        assert graph.successors("a") == ["b"]

    def test_critical_path_chain(self):
        graph = chain_graph([1.0, 2.0, 3.0])
        assert graph.critical_path_length() == pytest.approx(6.0)

    def test_critical_path_parallel_tasks(self):
        graph = TaskGraph()
        graph.add_task("a", 1.0)
        graph.add_task("b", 5.0)
        graph.add_task("join", 1.0, deps=["a", "b"])
        assert graph.critical_path_length() == pytest.approx(6.0)

    def test_total_work(self):
        graph = chain_graph([1.0, 2.0, 3.0])
        assert graph.total_work() == pytest.approx(6.0)

    def test_depends_on_builder(self):
        task = Task(name="t", duration=1.0)
        task.depends_on("a", "b").depends_on("a")
        assert task.deps == ["a", "b"]

    def test_merge_graphs_with_links(self):
        first = chain_graph([1.0, 1.0])
        second = TaskGraph()
        second.add_task("next", 2.0)
        first.merge(second, link_from=["t1"], link_to=["next"])
        assert first.task("next").deps == ["t1"]
        assert len(first) == 3

    def test_task_kinds_default(self):
        graph = TaskGraph()
        t = graph.add_task("a", 1.0)
        assert t.kind is TaskKind.COMPUTE
