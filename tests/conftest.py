"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrices.stencil import poisson_2d_5pt, stencil_rhs
from repro.matrices.random_spd import random_dense_spd, random_sparse_spd


@pytest.fixture(scope="session")
def small_spd_system():
    """A small SPD system (2-D Poisson) with a known solution."""
    A = poisson_2d_5pt(24)           # n = 576
    x_star = np.ones(A.shape[0])
    b = A @ x_star
    return A, b, x_star


@pytest.fixture(scope="session")
def medium_spd_system():
    """A medium SPD system used by the resilient solver tests."""
    A = poisson_2d_5pt(40)           # n = 1600
    rng = np.random.default_rng(7)
    x_star = rng.standard_normal(A.shape[0])
    b = A @ x_star
    return A, b, x_star


@pytest.fixture(scope="session")
def dense_spd_block():
    """A dense SPD matrix for diagonal-block recovery tests."""
    return random_dense_spd(48, condition=50.0, seed=3)


@pytest.fixture(scope="session")
def random_sparse_system():
    """A random sparse SPD system (non-stencil sparsity)."""
    A = random_sparse_spd(400, density=0.02, seed=11)
    b = stencil_rhs(A, kind="random", seed=5)
    return A, b
