"""Journal robustness: the resume path must survive real crash debris.

``journal_append`` fsyncs every line, so the only artifact a crash can
leave is a torn *trailing* line — and the daemon or a resumed offline
run must shrug at empty files, torn tails and journals that belong to a
different campaign entirely (copied or renamed by tooling).
"""

import json

import pytest

from repro.campaign.engine import clear_caches, run_campaign
from repro.campaign.executors import (CampaignInterrupted, SerialExecutor,
                                      TripAfter)
from repro.campaign.spec import CampaignSpec, SolverKnobs
from repro.campaign.store import CampaignStore, clear_store_cache

KEY_A = "a" * 64
KEY_B = "b" * 64


def tiny_spec(**overrides):
    defaults = dict(
        matrices=["laplacian2d:10"], methods=("FEIR",), rates=(2.0,),
        repetitions=2, seed=99,
        knobs=SolverKnobs(tolerance=1e-8, max_iterations=2000,
                          num_workers=4, page_size=20),
        name="tiny")
    defaults.update(overrides)
    return CampaignSpec(**defaults)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    clear_store_cache()
    yield
    clear_caches()
    clear_store_cache()


@pytest.fixture()
def store(tmp_path):
    return CampaignStore(tmp_path / "store")


class TestEmptyJournal:
    def test_missing_file_yields_nothing(self, store):
        assert list(store.journal_events(KEY_A)) == []
        assert store.journal_summary(KEY_A) is None

    def test_empty_file_is_not_a_resume(self, store):
        path = store.journal_path(KEY_A)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.touch()
        assert list(store.journal_events(KEY_A)) == []
        assert store.journal_summary(KEY_A) is None

    def test_whitespace_only_file(self, store):
        path = store.journal_path(KEY_A)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n  \n\n")
        assert list(store.journal_events(KEY_A)) == []
        assert store.journal_summary(KEY_A) is None


class TestTornTrailingLine:
    def events(self, store, key=KEY_A):
        store.journal_append(key, {"event": "start", "key": key,
                                   "pending": 2})
        store.journal_append(key, {"event": "trial", "key": key,
                                   "index": 0})
        store.journal_append(key, {"event": "trial", "key": key,
                                   "index": 1})

    def tear(self, store, key=KEY_A):
        """Simulate a crash mid-append: a partial JSON line, no newline."""
        with open(store.journal_path(key), "a") as handle:
            handle.write('{"event": "tri')

    def test_torn_tail_is_skipped(self, store):
        self.events(store)
        self.tear(store)
        kinds = [e["event"] for e in store.journal_events(KEY_A)]
        assert kinds == ["start", "trial", "trial"]

    def test_summary_counts_only_whole_lines(self, store):
        self.events(store)
        self.tear(store)
        summary = store.journal_summary(KEY_A)
        assert summary["persisted"] == 2
        assert summary["last"]["event"] == "trial"

    def test_append_after_tear_keeps_both_sides(self, store):
        """A resumed run appends past the torn fragment; the fragment
        plus the new line decode as garbage and are skipped, everything
        else survives."""
        self.events(store)
        self.tear(store)
        store.journal_append(KEY_A, {"event": "done", "key": KEY_A})
        events = list(store.journal_events(KEY_A))
        assert [e["event"] for e in events[:3]] == ["start", "trial",
                                                    "trial"]
        # the torn fragment merged with the next append into one
        # undecodable line — skipped, never raising
        assert all("event" in e for e in events)

    def test_mid_file_garbage_does_not_hide_the_tail(self, store):
        path = store.journal_path(KEY_A)
        store.journal_append(KEY_A, {"event": "start", "key": KEY_A})
        with open(path, "a") as handle:
            handle.write("\x00\x01 not json at all\n")
        store.journal_append(KEY_A, {"event": "done", "key": KEY_A})
        kinds = [e["event"] for e in store.journal_events(KEY_A)]
        assert kinds == ["start", "done"]


class TestKeyMismatch:
    def test_foreign_journal_is_ignored_not_merged(self, store):
        """A journal whose stamped key disagrees with its filename (file
        copied between campaigns) must produce *no* resume summary —
        merging it would claim another spec's trials as persisted."""
        store.journal_append(KEY_A, {"event": "start", "key": KEY_A,
                                     "pending": 4})
        store.journal_append(KEY_A, {"event": "trial", "key": KEY_A,
                                     "index": 0})
        # simulate `cp journals/aaa.jsonl journals/bbb.jsonl`
        path_b = store.journal_path(KEY_B)
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_b.write_bytes(store.journal_path(KEY_A).read_bytes())

        assert store.journal_summary(KEY_A)["persisted"] == 1
        assert store.journal_summary(KEY_B) is None

    def test_unstamped_legacy_events_still_summarise(self, store):
        """Journals written before key-stamping carry no ``key`` field;
        they are trusted by filename as before."""
        path = store.journal_path(KEY_A)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a") as handle:
            handle.write(json.dumps({"event": "trial", "index": 3}) + "\n")
        summary = store.journal_summary(KEY_A)
        assert summary is not None
        assert summary["persisted"] == 1

    def test_one_foreign_event_poisons_the_whole_journal(self, store):
        store.journal_append(KEY_A, {"event": "trial", "key": KEY_A,
                                     "index": 0})
        store.journal_append(KEY_A, {"event": "trial", "key": KEY_B,
                                     "index": 1})
        assert store.journal_summary(KEY_A) is None


class TestEngineIntegration:
    def test_interrupted_run_resumes_past_a_torn_tail(self, store,
                                                      tmp_path):
        spec = tiny_spec()
        key = spec.store_key()
        with pytest.raises(CampaignInterrupted):
            run_campaign(spec, executor=SerialExecutor(), store=store,
                         trip=TripAfter(1))
        with open(store.journal_path(key), "a") as handle:
            handle.write('{"event": "trial", "ind')

        clear_caches()
        clear_store_cache()
        resumed = run_campaign(spec, executor=SerialExecutor(),
                               store=CampaignStore(tmp_path / "store"))
        assert resumed.cache_hits >= 1
        summary = store.journal_summary(key)
        assert summary["last"]["event"] == "done"

    def test_journal_events_are_key_stamped(self, store):
        spec = tiny_spec()
        run_campaign(spec, executor=SerialExecutor(), store=store)
        events = list(store.journal_events(spec.store_key()))
        assert events, "campaign with a store must journal"
        assert all(e["key"] == spec.store_key() for e in events)

    def test_append_is_durable_on_return(self, store):
        """flush+fsync per append: the line is on disk (visible through
        a fresh handle) the moment journal_append returns."""
        store.journal_append(KEY_A, {"event": "start", "key": KEY_A})
        raw = store.journal_path(KEY_A).read_text()
        assert raw.endswith("\n")
        assert json.loads(raw.splitlines()[0])["event"] == "start"
