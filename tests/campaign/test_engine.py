"""Campaign engine tests: determinism and executor equivalence.

The acceptance bar for the engine is strict: under a fixed campaign
seed, the aggregated statistics must be *byte-identical* between the
serial executor and both pool executors, no matter in which order the
pool completes trials.
"""

import pytest

from repro.campaign.engine import clear_caches, run_campaign, run_trial
from repro.campaign.executors import (ChunkedExecutor, ProcessPoolExecutor,
                                      SerialExecutor, make_executor)
from repro.campaign.results import CampaignResult, TrialResult
from repro.campaign.spec import CampaignSpec, SolverKnobs


def tiny_spec(**overrides):
    """A campaign small enough for process-pool tests on any machine."""
    defaults = dict(
        matrices=["laplacian2d:10"], methods=("FEIR", "Lossy"),
        rates=(2.0, 20.0), repetitions=2, seed=99,
        knobs=SolverKnobs(tolerance=1e-8, max_iterations=2000,
                          num_workers=4, page_size=20),
        name="tiny")
    defaults.update(overrides)
    return CampaignSpec(**defaults)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestRunTrial:
    def test_single_trial_runs_and_converges(self):
        trial = tiny_spec().expand()[0]
        result = run_trial(trial)
        assert isinstance(result, TrialResult)
        assert result.converged
        assert result.iterations > 0
        assert result.ideal_time > 0
        assert result.solve_time >= result.ideal_time

    def test_trial_is_reproducible(self):
        trial = tiny_spec().expand()[3]
        a = run_trial(trial)
        clear_caches()
        b = run_trial(trial)
        assert a.solve_time == b.solve_time
        assert a.iterations == b.iterations
        assert a.faults_injected == b.faults_injected

    def test_fault_free_trial_has_zero_overhead(self):
        spec = tiny_spec(rates=(0.0,), methods=("FEIR",), repetitions=1)
        result = run_trial(spec.expand()[0])
        assert result.faults_injected == 0
        # FEIR's recovery tasks overlap with compute on a fault-free run
        # but never cost more than a few percent.
        assert result.overhead_percent < 25.0


class TestDeterminism:
    def test_serial_repeat_is_byte_identical(self):
        a = run_campaign(tiny_spec(), executor=SerialExecutor())
        clear_caches()
        b = run_campaign(tiny_spec(), executor=SerialExecutor())
        assert a.fingerprint() == b.fingerprint()

    def test_different_seed_changes_results(self):
        a = run_campaign(tiny_spec(), executor=SerialExecutor())
        clear_caches()
        b = run_campaign(tiny_spec(seed=100), executor=SerialExecutor())
        assert a.fingerprint() != b.fingerprint()

    def test_aggregation_is_order_independent(self):
        a = run_campaign(tiny_spec(), executor=SerialExecutor())
        shuffled = CampaignResult(name=a.name)
        shuffled.extend(reversed(a.sorted_trials()))
        assert shuffled.fingerprint() == a.fingerprint()
        assert shuffled.summary() == a.summary()


class TestExecutorEquivalence:
    """Serial vs process-pool vs chunked: identical statistics."""

    @pytest.fixture(scope="class")
    def serial_result(self):
        clear_caches()
        return run_campaign(tiny_spec(), executor=SerialExecutor())

    def test_process_pool_matches_serial(self, serial_result):
        pool = run_campaign(tiny_spec(),
                            executor=ProcessPoolExecutor(max_workers=2))
        assert pool.fingerprint() == serial_result.fingerprint()
        for a, b in zip(pool.sorted_trials(), serial_result.sorted_trials(), strict=True):
            assert a.solve_time == b.solve_time
            assert a.iterations == b.iterations

    def test_chunked_matches_serial(self, serial_result):
        chunked = run_campaign(
            tiny_spec(), executor=ChunkedExecutor(max_workers=2,
                                                  chunk_size=3))
        assert chunked.fingerprint() == serial_result.fingerprint()

    def test_all_trials_accounted_for(self, serial_result):
        assert len(serial_result) == tiny_spec().num_trials


class TestEngineApi:
    def test_progress_callback_sees_every_trial(self):
        seen = []
        run_campaign(tiny_spec(repetitions=1),
                     progress=lambda t, done, total: seen.append((done,
                                                                  total)))
        assert len(seen) == tiny_spec(repetitions=1).num_trials
        assert seen[-1][0] == seen[-1][1]

    def test_make_executor_registry(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("process"), ProcessPoolExecutor)
        assert isinstance(make_executor("chunked"), ChunkedExecutor)
        with pytest.raises(ValueError):
            make_executor("gpu")

    def test_chunked_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            ChunkedExecutor(chunk_size=0)

    def test_summary_and_cells_agree_on_grid(self):
        result = run_campaign(tiny_spec(), executor=SerialExecutor())
        cells = result.cells()
        assert set(result.summary()) == {(m, r)
                                         for (_, m, r) in cells}
        cell = result.cell("laplacian2d(nx=10,ny=10)", "FEIR", 2.0)
        assert cell.trials == 2

    def test_format_renders_table(self):
        result = run_campaign(tiny_spec(repetitions=1),
                              executor=SerialExecutor())
        text = result.format()
        assert "FEIR" in text and "rate 20" in text
