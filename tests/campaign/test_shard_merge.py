"""Sharded campaigns and the merge protocol.

The contract under test: N shard runs partition the campaign exactly,
and merging their partial results — in any order — reproduces the
fingerprint of a single unsharded run byte-for-byte.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign.engine import clear_caches, run_campaign
from repro.campaign.executors import SerialExecutor
from repro.campaign.results import CampaignResult
from repro.campaign.spec import (CampaignSpec, SolverKnobs, parse_shard,
                                 shard_trials)


def tiny_spec(**overrides):
    defaults = dict(
        matrices=["laplacian2d:10"], methods=("FEIR", "Lossy"),
        rates=(2.0, 20.0), repetitions=2, seed=99,
        knobs=SolverKnobs(tolerance=1e-8, max_iterations=2000,
                          num_workers=4, page_size=20),
        name="tiny")
    defaults.update(overrides)
    return CampaignSpec(**defaults)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestShardPartition:
    def test_parse_shard(self):
        assert parse_shard("0/4") == (0, 4)
        assert parse_shard("3/4") == (3, 4)

    @pytest.mark.parametrize("text", ["4/4", "-1/4", "1", "a/4", "1/b",
                                      "0/0", "0/-2"])
    def test_parse_shard_rejects(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8, 11])
    def test_shards_partition_disjoint_and_complete(self, count):
        trials = tiny_spec().expand()
        shards = [shard_trials(trials, i, count) for i in range(count)]
        indices = [t.index for shard in shards for t in shard]
        assert sorted(indices) == [t.index for t in trials]

    def test_round_robin_balances_shards(self):
        trials = tiny_spec().expand()  # 8 trials
        a, b = (shard_trials(trials, i, 2) for i in range(2))
        assert abs(len(a) - len(b)) <= 1
        # Round-robin: consecutive indices alternate shards, so each
        # shard samples every region of the grid.
        assert [t.index for t in a] == [0, 2, 4, 6]
        assert [t.index for t in b] == [1, 3, 5, 7]

    def test_shard_rejects_bad_indices(self):
        trials = tiny_spec().expand()
        with pytest.raises(ValueError):
            shard_trials(trials, 2, 2)
        with pytest.raises(ValueError):
            shard_trials(trials, 0, 0)


def run_shards(spec, count):
    """One partial CampaignResult per shard, fresh caches in between."""
    parts = []
    for i in range(count):
        clear_caches()
        parts.append(run_campaign(spec, executor=SerialExecutor(),
                                  shard=(i, count)))
    return parts


class TestShardedRuns:
    def test_partial_result_records_shard_and_total(self):
        part = run_campaign(tiny_spec(), executor=SerialExecutor(),
                            shard=(0, 2))
        assert part.shard == (0, 2)
        assert part.total_trials == tiny_spec().num_trials
        assert len(part) == tiny_spec().num_trials // 2
        assert part.spec_key == tiny_spec().store_key()

    def test_merge_matches_unsharded_fingerprint(self):
        unsharded = run_campaign(tiny_spec(), executor=SerialExecutor())
        merged = CampaignResult.merge(run_shards(tiny_spec(), 3))
        assert merged.fingerprint() == unsharded.fingerprint()
        assert len(merged) == len(unsharded)

    def test_merge_survives_save_load_roundtrip(self, tmp_path):
        unsharded = run_campaign(tiny_spec(), executor=SerialExecutor())
        paths = []
        for i, part in enumerate(run_shards(tiny_spec(), 2)):
            path = tmp_path / f"part{i}.json"
            part.save(path)
            paths.append(path)
        merged = CampaignResult.merge([CampaignResult.load(p)
                                       for p in paths])
        assert merged.fingerprint() == unsharded.fingerprint()

    def test_merge_is_order_independent_explicit(self):
        parts = run_shards(tiny_spec(), 3)
        forward = CampaignResult.merge(parts)
        backward = CampaignResult.merge(parts[::-1])
        assert forward.fingerprint() == backward.fingerprint()


class TestMergeOrderIndependenceProperty:
    """Hypothesis: *any* permutation of *any* shard split merges to the
    same fingerprint.  Trials run once per split (cached per class) so
    the property test permutes cheap in-memory partials."""

    _cache = {}

    @classmethod
    def parts_for(cls, count):
        if count not in cls._cache:
            cls._cache[count] = (
                run_campaign(tiny_spec(), executor=SerialExecutor())
                .fingerprint(),
                run_shards(tiny_spec(), count))
        return cls._cache[count]

    @given(count=st.integers(min_value=1, max_value=5),
           order_seed=st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_permutation_merges_identically(self, count, order_seed):
        reference, parts = self.parts_for(count)
        shuffled = list(parts)
        order_seed.shuffle(shuffled)
        merged = CampaignResult.merge(shuffled)
        assert merged.fingerprint() == reference
        assert merged.total_trials == tiny_spec().num_trials


class TestMergeValidation:
    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError, match="nothing to merge"):
            CampaignResult.merge([])

    def test_merge_rejects_duplicate_shards(self):
        parts = run_shards(tiny_spec(), 2)
        with pytest.raises(ValueError, match="more than one partial"):
            CampaignResult.merge([parts[0], parts[0]])

    def test_merge_rejects_mixed_campaigns(self):
        a = run_campaign(tiny_spec(), executor=SerialExecutor(),
                         shard=(0, 2))
        clear_caches()
        b = run_campaign(tiny_spec(seed=100), executor=SerialExecutor(),
                         shard=(1, 2))
        with pytest.raises(ValueError, match="different campaigns"):
            CampaignResult.merge([a, b])

    def test_merge_rejects_incomplete_by_default(self):
        parts = run_shards(tiny_spec(), 3)
        with pytest.raises(ValueError, match="incomplete"):
            CampaignResult.merge(parts[:2])

    def test_merge_allows_incomplete_when_asked(self):
        parts = run_shards(tiny_spec(), 3)
        partial = CampaignResult.merge(parts[:2], require_complete=False)
        assert len(partial) == len(parts[0]) + len(parts[1])
