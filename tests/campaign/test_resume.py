"""Interrupted campaigns resume from their last persisted trial.

Workers persist every finished trial into the content-addressed store
the moment it completes, so killing a campaign mid-stream loses only
in-flight work: a re-run serves the persisted trials as cache hits and
executes just the remainder, converging on a fingerprint identical to a
never-interrupted run.  :class:`TripAfter` simulates the kill
deterministically (a real SIGKILL would race the pool's chunking).
"""

import pytest

from repro.campaign.engine import clear_caches, run_campaign
from repro.campaign.executors import (CampaignInterrupted, ChunkedExecutor,
                                      SerialExecutor, TripAfter)
from repro.campaign.spec import CampaignSpec, SolverKnobs
from repro.campaign.store import CampaignStore, clear_store_cache


def tiny_spec(**overrides):
    defaults = dict(
        matrices=["laplacian2d:10"], methods=("FEIR", "Lossy"),
        rates=(2.0, 20.0), repetitions=2, seed=99,
        knobs=SolverKnobs(tolerance=1e-8, max_iterations=2000,
                          num_workers=4, page_size=20),
        name="tiny")
    defaults.update(overrides)
    return CampaignSpec(**defaults)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    clear_store_cache()
    yield
    clear_caches()
    clear_store_cache()


class TestTripAfter:
    def test_trips_at_the_limit(self):
        trip = TripAfter(3)
        trip(1)
        trip(2)
        with pytest.raises(CampaignInterrupted) as info:
            trip(3)
        assert info.value.executed == 3

    def test_rejects_non_positive_limit(self):
        with pytest.raises(ValueError):
            TripAfter(0)


class TestResume:
    @pytest.mark.parametrize("make_executor", [
        SerialExecutor,
        lambda: ChunkedExecutor(max_workers=2, chunk_size=2),
    ], ids=["serial", "chunked"])
    def test_interrupt_then_resume_matches_uninterrupted(self, tmp_path,
                                                         make_executor):
        reference = run_campaign(tiny_spec(), executor=SerialExecutor())

        clear_caches()
        clear_store_cache()
        store = CampaignStore(tmp_path / "store")
        kill_after = 3
        with pytest.raises(CampaignInterrupted):
            run_campaign(tiny_spec(), executor=make_executor(),
                         store=store, trip=TripAfter(kill_after))

        # The killed run persisted at least the trials the parent saw
        # complete (pool chunks in flight may finish a few more — on a
        # grid this small possibly even all of them).
        survivors = store.entry_count()["trials"]
        assert kill_after <= survivors <= tiny_spec().num_trials

        clear_caches()
        clear_store_cache()
        resumed = run_campaign(tiny_spec(), executor=make_executor(),
                               store=CampaignStore(tmp_path / "store"))
        assert resumed.cache_hits == survivors
        assert resumed.executed == tiny_spec().num_trials - survivors
        assert resumed.fingerprint() == reference.fingerprint()

    def test_journal_records_the_interrupted_run(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        key = tiny_spec().store_key()
        with pytest.raises(CampaignInterrupted):
            run_campaign(tiny_spec(), executor=SerialExecutor(),
                         store=store, trip=TripAfter(2))
        summary = store.journal_summary(key)
        assert summary is not None
        assert summary["persisted"] == 2
        assert summary["last"]["event"] == "trial"  # never reached "done"

        clear_caches()
        clear_store_cache()
        run_campaign(tiny_spec(), executor=SerialExecutor(),
                     store=CampaignStore(tmp_path / "store"))
        summary = store.journal_summary(key)
        assert summary["last"]["event"] == "done"
        assert "fingerprint" in summary["last"]

    def test_double_interrupt_still_converges(self, tmp_path):
        """Two successive kills, then a clean run: the store accretes
        trials monotonically until the campaign completes."""
        reference = run_campaign(tiny_spec(), executor=SerialExecutor())
        counts = []
        for limit in (2, 3):
            clear_caches()
            clear_store_cache()
            store = CampaignStore(tmp_path / "store")
            with pytest.raises(CampaignInterrupted):
                run_campaign(tiny_spec(), executor=SerialExecutor(),
                             store=store, trip=TripAfter(limit))
            counts.append(store.entry_count()["trials"])
        assert counts[1] > counts[0]

        clear_caches()
        clear_store_cache()
        final = run_campaign(tiny_spec(), executor=SerialExecutor(),
                             store=CampaignStore(tmp_path / "store"))
        assert final.fingerprint() == reference.fingerprint()
        assert final.executed == tiny_spec().num_trials - counts[1]

    def test_trip_counts_only_executed_trials(self, tmp_path):
        """A fully warm campaign executes nothing, so a trip hook never
        fires — cache hits must not count toward the interruption."""
        store = CampaignStore(tmp_path / "store")
        run_campaign(tiny_spec(), executor=SerialExecutor(), store=store)
        clear_caches()
        clear_store_cache()
        warm = run_campaign(tiny_spec(), executor=SerialExecutor(),
                            store=CampaignStore(tmp_path / "store"),
                            trip=TripAfter(1))
        assert warm.executed == 0
