"""Content-addressed campaign store: cache correctness and maintenance.

The store's acceptance bar is the byte-identity anchor: a cache hit must
reproduce exactly what a cold computation would have produced — same
trial records, same aggregates, same fingerprint — no matter which
executor ran the cold pass.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.campaign.engine import clear_caches, run_campaign
from repro.campaign.executors import ChunkedExecutor, SerialExecutor
from repro.campaign.spec import CampaignSpec, MatrixSpec, SolverKnobs
from repro.campaign.store import (STORE_SCHEMA_VERSION, CampaignStore,
                                  StoreSchemaError, clear_store_cache,
                                  default_store_root, open_store)


def tiny_spec(**overrides):
    defaults = dict(
        matrices=["laplacian2d:10"], methods=("FEIR", "Lossy"),
        rates=(2.0, 20.0), repetitions=2, seed=99,
        knobs=SolverKnobs(tolerance=1e-8, max_iterations=2000,
                          num_workers=4, page_size=20),
        name="tiny")
    defaults.update(overrides)
    return CampaignSpec(**defaults)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    clear_store_cache()
    yield
    clear_caches()
    clear_store_cache()


class TestStoreBasics:
    def test_creates_layout_and_schema(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        schema = json.loads((store.root / "SCHEMA").read_text())
        assert schema["schema"] == STORE_SCHEMA_VERSION
        for kind in ("trials", "baselines", "matrices", "scalars"):
            assert (store.root / kind).is_dir()

    def test_env_override_controls_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_STORE", str(tmp_path / "env"))
        assert default_store_root() == tmp_path / "env"

    def test_rejects_incompatible_schema(self, tmp_path):
        root = tmp_path / "store"
        CampaignStore(root)
        (root / "SCHEMA").write_text('{"schema": 99}')
        with pytest.raises(StoreSchemaError, match="schema v99"):
            CampaignStore(root)

    def test_rejects_unreadable_schema(self, tmp_path):
        root = tmp_path / "store"
        CampaignStore(root)
        (root / "SCHEMA").write_text("not json")
        with pytest.raises(StoreSchemaError, match="unreadable"):
            CampaignStore(root)

    def test_refuses_to_adopt_foreign_directory(self, tmp_path):
        root = tmp_path / "not-a-store"
        root.mkdir()
        (root / "precious.txt").write_text("user data")
        with pytest.raises(StoreSchemaError, match="refusing to adopt"):
            CampaignStore(root)

    def test_incompatible_artifact_fails_loudly(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        key = "ab" + "0" * 62
        store._put_json("scalars", key, {"value": 1})
        path = store._path("scalars", key)
        payload = json.loads(path.read_text())
        payload["schema"] = 0
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreSchemaError, match="schema v0"):
            store.get_scalar(key)

    def test_corrupt_artifact_self_heals_as_miss(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        key = "cd" + "0" * 62
        store._put_json("scalars", key, {"value": 1})
        store._path("scalars", key).write_text("{torn")
        assert store.get_scalar(key) is None
        assert not store._path("scalars", key).exists()

    def test_open_store_caches_per_root(self, tmp_path):
        a = open_store(tmp_path / "store")
        b = open_store(tmp_path / "store")
        assert a is b


class TestArtifactRoundTrips:
    def test_baseline_roundtrip_is_bit_exact(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        value = 0.1 + 0.2  # a float with no short decimal representation
        store.put_baseline("ee" + "0" * 62, value)
        assert store.get_baseline("ee" + "0" * 62) == value

    @pytest.mark.parametrize("text,sparse", [("laplacian2d:9", True),
                                             ("qa8fm", False)])
    def test_matrix_roundtrip_is_bit_exact(self, tmp_path, text, sparse):
        store = CampaignStore(tmp_path / "store")
        matrix = MatrixSpec.parse(text, sparse=sparse)
        A, b = matrix.build()
        store.put_matrix("aa" + "0" * 62, A, b)
        A2, b2 = store.get_matrix("aa" + "0" * 62)
        assert type(A2).__name__ == type(A).__name__
        assert A2.shape == A.shape
        assert np.array_equal(A2.data, A.data)
        assert np.array_equal(A2.indices, A.indices)
        assert np.array_equal(A2.indptr, A.indptr)
        assert np.array_equal(b2, b)
        assert b2.dtype == b.dtype

    def test_missing_entries_are_none(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        key = "ff" + "0" * 62
        assert store.get_trial(key) is None
        assert store.get_baseline(key) is None
        assert store.get_matrix(key) is None
        assert store.get_scalar(key) is None


class TestWarmCampaigns:
    def test_warm_rerun_executes_zero_trials_same_fingerprint(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        cold = run_campaign(tiny_spec(), executor=SerialExecutor(),
                            store=store)
        assert cold.executed == tiny_spec().num_trials
        assert cold.cache_hits == 0

        clear_caches()
        clear_store_cache()
        warm = run_campaign(tiny_spec(), executor=SerialExecutor(),
                            store=CampaignStore(tmp_path / "store"))
        assert warm.executed == 0
        assert warm.cache_hits == tiny_spec().num_trials
        assert warm.fingerprint() == cold.fingerprint()
        for a, b in zip(warm.sorted_trials(), cold.sorted_trials(), strict=True):
            assert a.solve_time == b.solve_time
            assert a.iterations == b.iterations
            assert a.final_residual == b.final_residual

    def test_store_run_matches_storeless_run(self, tmp_path):
        stored = run_campaign(tiny_spec(), executor=SerialExecutor(),
                              store=CampaignStore(tmp_path / "store"))
        clear_caches()
        plain = run_campaign(tiny_spec(), executor=SerialExecutor())
        assert stored.fingerprint() == plain.fingerprint()

    def test_warm_hit_rate_survives_executor_swap(self, tmp_path):
        """Trials cached by the serial executor satisfy a chunked run —
        the store is executor-agnostic, like the fingerprints."""
        store = CampaignStore(tmp_path / "store")
        cold = run_campaign(tiny_spec(), executor=SerialExecutor(),
                            store=store)
        clear_caches()
        clear_store_cache()
        warm = run_campaign(
            tiny_spec(), executor=ChunkedExecutor(max_workers=2,
                                                  chunk_size=3),
            store=CampaignStore(tmp_path / "store"))
        assert warm.executed == 0
        assert warm.fingerprint() == cold.fingerprint()

    def test_grid_growth_only_executes_new_cells(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        run_campaign(tiny_spec(), executor=SerialExecutor(), store=store)
        clear_caches()
        clear_store_cache()
        grown = run_campaign(tiny_spec(rates=(2.0, 5.0, 20.0)),
                             executor=SerialExecutor(),
                             store=CampaignStore(tmp_path / "store"))
        assert grown.cache_hits == tiny_spec().num_trials
        assert grown.executed == grown.total_trials - grown.cache_hits

    def test_different_seed_misses_the_cache(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        run_campaign(tiny_spec(), executor=SerialExecutor(), store=store)
        clear_caches()
        clear_store_cache()
        other = run_campaign(tiny_spec(seed=100), executor=SerialExecutor(),
                             store=CampaignStore(tmp_path / "store"))
        assert other.cache_hits == 0

    def test_backend_knob_partitions_the_cache(self, tmp_path):
        """The cross-backend bit-identity invariant is *checked*, never
        assumed: a threaded-backend campaign must not be satisfied from
        trials cached under the simulated backend."""
        sim = tiny_spec().expand()[0]
        thr = tiny_spec(knobs=SolverKnobs(
            tolerance=1e-8, max_iterations=2000, num_workers=4,
            page_size=20, backend="threaded")).expand()[0]
        assert sim.store_key() != thr.store_key()


class TestGc:
    def test_gc_prunes_old_entries_keeps_fresh(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        run_campaign(tiny_spec(), executor=SerialExecutor(), store=store)
        counts = store.entry_count()
        assert counts["trials"] == tiny_spec().num_trials
        # Nothing is older than 30 days: gc keeps everything.
        removed, kept = store.gc(days=30)
        assert removed == 0 and kept > 0
        # Pretend a month passes: everything is unreferenced and pruned.
        removed, kept = store.gc(days=30,
                                 now=time.time() + 31 * 86400.0)
        assert kept == 0
        assert removed == sum(counts.values())
        assert store.entry_count()["trials"] == 0

    def test_reads_refresh_entry_age(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        store.put_scalar("aa" + "0" * 62, 7)
        path = store._path("scalars", "aa" + "0" * 62)
        old = time.time() - 40 * 86400.0
        os.utime(path, (old, old))
        assert store.get_scalar("aa" + "0" * 62) == 7  # touches mtime
        removed, kept = store.gc(days=30)
        assert removed == 0 and kept == 1

    def test_gc_rejects_negative_age(self, tmp_path):
        with pytest.raises(ValueError):
            CampaignStore(tmp_path / "store").gc(days=-1)

    def test_gc_now_cli_override(self, tmp_path, capsys):
        """`store --gc --now` pins the cutoff clock — no monkeypatching."""
        from repro.campaign.__main__ import main_store

        store = CampaignStore(tmp_path / "store")
        store.put_scalar("aa" + "0" * 62, 7)
        root = str(tmp_path / "store")
        # From the perspective of "now" = one second from now, nothing
        # is 30 days old yet.
        rc = main_store(["--store", root, "--gc", "--days", "30",
                         "--now", str(time.time() + 1.0)])
        assert rc == 0
        assert store.entry_count()["scalars"] == 1
        # A "now" 31 days in the future ages everything out.
        rc = main_store(["--store", root, "--gc", "--days", "30",
                         "--now", str(time.time() + 31 * 86400.0)])
        assert rc == 0
        assert store.entry_count()["scalars"] == 0
        out = capsys.readouterr().out
        assert "removed 1" in out
