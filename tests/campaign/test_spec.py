"""Tests for the declarative campaign spec and its expansion."""

import pickle

import numpy as np
import pytest

from repro.campaign.spec import (CampaignSpec, MatrixSpec, SolverKnobs,
                                 TrialSpec)


class TestMatrixSpec:
    def test_parse_suite_name(self):
        spec = MatrixSpec.parse("qa8fm")
        assert spec.family == "suite"
        assert spec.label == "qa8fm"

    def test_parse_parametric(self):
        spec = MatrixSpec.parse("laplacian2d:12x9")
        assert spec.family == "laplacian2d"
        assert dict(spec.params) == {"nx": 12, "ny": 9}

    def test_parse_square_default(self):
        spec = MatrixSpec.parse("laplacian2d:12")
        assert dict(spec.params) == {"nx": 12, "ny": 12}

    def test_parse_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            MatrixSpec.parse("hilbert:12")

    def test_parse_rejects_missing_dims(self):
        with pytest.raises(ValueError):
            MatrixSpec.parse("laplacian2d:")

    def test_unknown_family_rejected_at_construction(self):
        with pytest.raises(ValueError):
            MatrixSpec(family="dense")

    def test_build_sparse_operator_backend(self):
        from repro.matrices.sparse import SparseOperator
        A, b = MatrixSpec.parse("laplacian2d:8").build()
        assert isinstance(A, SparseOperator)
        assert A.shape == (64, 64)
        assert b.shape == (64,)

    def test_build_suite_scipy_backend(self):
        import scipy.sparse as sp
        A, b = MatrixSpec.suite("qa8fm").build()
        assert sp.issparse(A)
        assert A.shape[0] == b.shape[0]

    def test_build_is_deterministic(self):
        spec = MatrixSpec.parse("laplacian2d:8")
        A1, b1 = spec.build()
        A2, b2 = spec.build()
        assert np.array_equal(A1.data, A2.data)
        assert np.array_equal(b1, b2)


class TestCampaignSpec:
    def make_spec(self, **overrides):
        defaults = dict(matrices=["laplacian2d:8"],
                        methods=("FEIR", "AFEIR"), rates=(1.0, 10.0),
                        repetitions=3, seed=7)
        defaults.update(overrides)
        return CampaignSpec(**defaults)

    def test_num_trials(self):
        assert self.make_spec().num_trials == 1 * 2 * 2 * 3

    def test_expand_indices_are_dense(self):
        trials = self.make_spec().expand()
        assert [t.index for t in trials] == list(range(len(trials)))

    def test_expand_derives_independent_seeds(self):
        trials = self.make_spec().expand()
        entropies = {tuple(t.seed.entropy) for t in trials}
        assert len(entropies) == len(trials)
        # ... and the campaign seed is the leading entropy word, so two
        # campaigns differing only in seed share no trial seed material.
        assert all(tuple(t.seed.entropy)[0] == 7 for t in trials)

    def test_trial_seeds_are_content_keyed(self):
        """Growing the grid must not disturb pre-existing trials' seeds
        (the property that makes the campaign store incremental)."""
        base = self.make_spec().expand()
        grown = self.make_spec(rates=(1.0, 5.0, 10.0)).expand()
        base_by_cell = {(t.matrix.label, t.method, t.rate, t.repetition):
                        tuple(t.seed.entropy) for t in base}
        grown_by_cell = {(t.matrix.label, t.method, t.rate, t.repetition):
                         tuple(t.seed.entropy) for t in grown}
        for cell, entropy in base_by_cell.items():
            assert grown_by_cell[cell] == entropy
        # store keys follow suit: the old trials are a strict subset
        base_keys = {t.store_key() for t in base}
        grown_keys = {t.store_key() for t in grown}
        assert base_keys < grown_keys

    def test_expand_is_deterministic(self):
        a = self.make_spec().expand()
        b = self.make_spec().expand()
        for ta, tb in zip(a, b, strict=True):
            assert ta.index == tb.index
            assert ta.method == tb.method
            assert ta.rate == tb.rate
            rng_a = np.random.default_rng(ta.seed)
            rng_b = np.random.default_rng(tb.seed)
            assert rng_a.integers(0, 2**31) == rng_b.integers(0, 2**31)

    def test_trials_are_picklable(self):
        trial = self.make_spec().expand()[0]
        clone = pickle.loads(pickle.dumps(trial))
        assert isinstance(clone, TrialSpec)
        assert clone.index == trial.index
        a = np.random.default_rng(trial.seed).integers(0, 2**31)
        b = np.random.default_rng(clone.seed).integers(0, 2**31)
        assert a == b

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            self.make_spec(matrices=[])
        with pytest.raises(ValueError):
            self.make_spec(methods=())
        with pytest.raises(ValueError):
            self.make_spec(repetitions=0)

    def test_make_scenario_threads_trial_seed(self):
        trial = self.make_spec().expand()[0]
        scenario = trial.make_scenario()
        assert scenario.normalized_rate == trial.rate
        assert scenario.seed is trial.seed

    def test_fault_free_rate_gives_fault_free_scenario(self):
        spec = self.make_spec(rates=(0.0,))
        scenario = spec.expand()[0].make_scenario()
        assert scenario.is_fault_free

    def test_describe_is_json_friendly(self):
        import json
        text = json.dumps(self.make_spec().describe())
        assert "laplacian2d" in text

    def test_knobs_flow_into_trials(self):
        knobs = SolverKnobs(tolerance=1e-6, page_size=32)
        trials = self.make_spec(knobs=knobs).expand()
        assert all(t.knobs.tolerance == 1e-6 for t in trials)
