"""`store --verify`: every artifact must re-hash to its filename.

The store is content-addressed — an entry's filename *is* a SHA-256 of
its content token, and entries embed both that key and a checksum over
their canonical payload.  ``verify`` recomputes everything; these tests
corrupt entries in the ways disks and tooling actually corrupt them
(truncation, bit flips, renames) and check each is caught, reported and
— with ``remove=True`` — degraded to a plain cache miss.
"""

import json

import pytest

from repro.campaign.__main__ import main
from repro.campaign.engine import clear_caches, run_campaign
from repro.campaign.executors import SerialExecutor
from repro.campaign.spec import CampaignSpec, SolverKnobs
from repro.campaign.store import (STORE_SCHEMA_VERSION, CampaignStore,
                                  clear_store_cache)


def tiny_spec(**overrides):
    defaults = dict(
        matrices=["laplacian2d:10"], methods=("FEIR",), rates=(2.0,),
        repetitions=2, seed=99,
        knobs=SolverKnobs(tolerance=1e-8, max_iterations=2000,
                          num_workers=4, page_size=20),
        name="tiny")
    defaults.update(overrides)
    return CampaignSpec(**defaults)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    clear_store_cache()
    yield
    clear_caches()
    clear_store_cache()


@pytest.fixture()
def populated(tmp_path):
    """A store holding one real campaign's artifacts."""
    store = CampaignStore(tmp_path / "store")
    run_campaign(tiny_spec(), executor=SerialExecutor(), store=store)
    return store


def one_entry(store, kind, suffix):
    paths = sorted((store.root / kind).glob(f"*/*{suffix}"))
    assert paths, f"expected at least one {kind} entry"
    return paths[0]


class TestCleanStore:
    def test_fresh_campaign_verifies(self, populated):
        report = populated.verify()
        assert report.ok
        assert report.corrupt == []
        assert report.legacy == 0
        counts = populated.entry_count()
        expected = (counts["trials"] + counts["matrices"] +
                    counts["scalars"] + counts["baselines"] +
                    counts["journals"])
        assert report.verified == expected

    def test_empty_store_verifies(self, tmp_path):
        report = CampaignStore(tmp_path / "store").verify()
        assert report.ok
        assert report.verified == 0


class TestJsonCorruption:
    def test_unparseable_trial_is_corrupt(self, populated):
        path = one_entry(populated, "trials", ".json")
        path.write_text("{ definitely not json")
        report = populated.verify()
        assert not report.ok
        assert [c[0] for c in report.corrupt] == ["trials"]
        assert "unreadable JSON" in report.corrupt[0][2]

    def test_bit_flip_fails_the_checksum(self, populated):
        """Valid JSON, silently altered payload — only the embedded
        checksum can catch this."""
        path = one_entry(populated, "trials", ".json")
        payload = json.loads(path.read_text())
        payload["trial"]["iterations"] = 10 ** 6
        path.write_text(json.dumps(payload, sort_keys=True))
        report = populated.verify()
        assert not report.ok
        assert "checksum mismatch" in report.corrupt[0][2]

    def test_renamed_entry_fails_the_key_check(self, populated):
        """`cp` between content addresses: the payload is pristine but
        lives under the wrong name."""
        path = one_entry(populated, "trials", ".json")
        impostor = path.with_name("f" * 64 + ".json")
        impostor.write_bytes(path.read_bytes())
        report = populated.verify()
        assert not report.ok
        assert any("does not match" in reason
                   for _, _, reason in report.corrupt)

    def test_legacy_entry_is_reported_not_corrupt(self, populated):
        """Pre-checksum entries (no embedded key/checksum) stay readable
        and count as legacy, never as corruption."""
        path = one_entry(populated, "baselines", ".json")
        payload = json.loads(path.read_text())
        payload.pop("key", None)
        payload.pop("checksum", None)
        assert payload["schema"] == STORE_SCHEMA_VERSION
        path.write_text(json.dumps(payload, sort_keys=True))
        report = populated.verify()
        assert report.ok
        assert report.legacy == 1


class TestMatrixCorruption:
    def test_truncated_npz_is_corrupt(self, populated):
        path = one_entry(populated, "matrices", ".npz")
        path.write_bytes(path.read_bytes()[:100])
        report = populated.verify()
        assert not report.ok
        assert [c[0] for c in report.corrupt] == ["matrices"]
        assert "unreadable npz" in report.corrupt[0][2]


class TestJournalVerdicts:
    def test_torn_tail_is_ok(self, populated):
        spec_key = tiny_spec().store_key()
        with open(populated.journal_path(spec_key), "a") as handle:
            handle.write('{"event": "tri')
        assert populated.verify().ok

    def test_mid_file_garbage_is_corrupt(self, populated):
        spec_key = tiny_spec().store_key()
        with open(populated.journal_path(spec_key), "a") as handle:
            handle.write("\x00 garbage\n")
            handle.write(json.dumps({"event": "done",
                                     "key": spec_key}) + "\n")
        report = populated.verify()
        assert not report.ok
        assert [c[0] for c in report.corrupt] == ["journals"]


class TestRemove:
    def test_remove_degrades_to_cache_miss(self, populated, tmp_path):
        path = one_entry(populated, "trials", ".json")
        path.write_text("garbage")
        before = populated.entry_count()["trials"]

        report = populated.verify(remove=True)
        assert report.removed == 1
        assert populated.entry_count()["trials"] == before - 1
        assert populated.verify().ok

        # the removed trial is simply recomputed on the next run
        clear_caches()
        clear_store_cache()
        resumed = run_campaign(tiny_spec(), executor=SerialExecutor(),
                               store=CampaignStore(tmp_path / "store"))
        assert resumed.executed == 1
        assert resumed.cache_hits == tiny_spec().num_trials - 1

    def test_remove_without_corruption_removes_nothing(self, populated):
        report = populated.verify(remove=True)
        assert report.ok
        assert report.removed == 0


class TestCli:
    def test_verify_exit_codes(self, populated, capsys):
        root = str(populated.root)
        assert main(["store", "--store", root, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "0 corrupt" in out

        path = one_entry(populated, "trials", ".json")
        path.write_text("garbage")
        assert main(["store", "--store", root, "--verify"]) == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out

        assert main(["store", "--store", root, "--verify",
                     "--remove"]) == 1
        out = capsys.readouterr().out
        assert "1 removed" in out
        assert main(["store", "--store", root, "--verify"]) == 0

    def test_remove_requires_verify(self, populated, capsys):
        assert main(["store", "--store", str(populated.root),
                     "--remove"]) == 2
