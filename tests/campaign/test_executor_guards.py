"""Guards on the campaign executors: worker caps, validation, empty input."""

import pytest

from repro.campaign.executors import (ChunkedExecutor, ProcessPoolExecutor,
                                      SerialExecutor, default_worker_count,
                                      make_executor)
from repro.config import (MAX_WORKERS_ENV, max_workers_override,
                          resolve_worker_count)


def double(x):
    return 2 * x


class TestWorkerResolution:
    def test_default_is_at_least_one(self):
        assert default_worker_count() >= 1

    def test_env_override_caps_default(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "2")
        assert max_workers_override() == 2
        assert default_worker_count() <= 2

    def test_env_override_caps_explicit_requests(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "3")
        assert ProcessPoolExecutor(max_workers=16).max_workers == 3
        assert ChunkedExecutor(max_workers=16).max_workers == 3

    def test_blank_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "  ")
        assert max_workers_override() is None

    @pytest.mark.parametrize("bad", ["zero?", "-1", "0"])
    def test_invalid_env_values_raise(self, monkeypatch, bad):
        monkeypatch.setenv(MAX_WORKERS_ENV, bad)
        with pytest.raises(ValueError, match=MAX_WORKERS_ENV):
            resolve_worker_count()

    @pytest.mark.parametrize("bad", [0, -4])
    def test_non_positive_requests_raise(self, bad):
        with pytest.raises(ValueError, match="must be positive"):
            resolve_worker_count(bad)
        with pytest.raises(ValueError, match="must be positive"):
            ProcessPoolExecutor(max_workers=bad)
        with pytest.raises(ValueError, match="must be positive"):
            ChunkedExecutor(max_workers=bad)


class TestRunGuards:
    @pytest.mark.parametrize("executor", [
        SerialExecutor(),
        ProcessPoolExecutor(max_workers=2),
        ChunkedExecutor(max_workers=2, chunk_size=2),
    ])
    def test_empty_items_yield_nothing(self, executor):
        assert list(executor.run(double, [])) == []

    def test_single_item_short_circuits_to_serial(self):
        # A locally-unpicklable closure proves no process pool was used.
        bump = []
        results = list(ProcessPoolExecutor(max_workers=4).run(
            lambda x: bump.append(x) or x + 1, [41]))
        assert results == [42] and bump == [41]

    def test_chunked_single_chunk_short_circuits_to_serial(self):
        bump = []
        results = list(ChunkedExecutor(max_workers=4, chunk_size=10).run(
            lambda x: bump.append(x) or x, [1, 2, 3]))
        assert results == [1, 2, 3] and bump == [1, 2, 3]

    @pytest.mark.parametrize("bad", [0, -2])
    def test_invalid_chunk_size_raises(self, bad):
        with pytest.raises(ValueError, match="chunk size"):
            ChunkedExecutor(chunk_size=bad)
        with pytest.raises(ValueError, match="chunk size"):
            make_executor("chunked", chunk_size=bad)
