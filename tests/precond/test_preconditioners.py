"""Tests for preconditioners, including the partial application used by recovery."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices.stencil import poisson_2d_5pt
from repro.precond.block_jacobi import BlockJacobiPreconditioner
from repro.precond.identity import IdentityPreconditioner
from repro.precond.jacobi import JacobiPreconditioner


@pytest.fixture(scope="module")
def system():
    A = poisson_2d_5pt(12)              # n = 144
    rng = np.random.default_rng(0)
    v = rng.standard_normal(144)
    return A, v


class TestIdentity:
    def test_apply_returns_copy(self, system):
        _, v = system
        M = IdentityPreconditioner()
        z = M.apply(v)
        np.testing.assert_array_equal(z, v)
        z[0] = 99
        assert v[0] != 99

    def test_partial(self, system):
        _, v = system
        M = IdentityPreconditioner()
        np.testing.assert_array_equal(M.apply_partial(v, [3, 5]), v[[3, 5]])
        assert M.supports_partial


class TestJacobi:
    def test_apply_matches_diagonal_solve(self, system):
        A, v = system
        M = JacobiPreconditioner(A)
        np.testing.assert_allclose(M.apply(v), v / A.diagonal())

    def test_partial_matches_full(self, system):
        A, v = system
        M = JacobiPreconditioner(A)
        rows = [0, 7, 100]
        np.testing.assert_allclose(M.apply_partial(v, rows), M.apply(v)[rows])

    def test_zero_diagonal_rejected(self):
        A = sp.diags([0.0, 1.0]).tocsr()
        with pytest.raises(ValueError):
            JacobiPreconditioner(A)

    def test_length_mismatch(self, system):
        A, v = system
        with pytest.raises(ValueError):
            JacobiPreconditioner(A).apply(v[:-1])


class TestBlockJacobi:
    def test_apply_solves_each_block(self, system):
        A, v = system
        M = BlockJacobiPreconditioner(A, page_size=36)
        z = M.apply(v)
        for block in range(M.num_blocks):
            sl = M.blocked.block_slice(block)
            np.testing.assert_allclose(M.blocked.diag_block(block) @ z[sl],
                                       v[sl], atol=1e-9)

    def test_apply_block(self, system):
        A, v = system
        M = BlockJacobiPreconditioner(A, page_size=36)
        z = M.apply(v)
        sl = M.blocked.block_slice(1)
        np.testing.assert_allclose(M.apply_block(v, 1), z[sl], atol=1e-12)

    def test_partial_application_matches_full(self, system):
        """Partial application (Section 3.2) must agree with the full solve
        on the requested rows — this is what makes recovery of
        preconditioned vectors cheap."""
        A, v = system
        M = BlockJacobiPreconditioner(A, page_size=36)
        rows = [1, 40, 41, 143]
        np.testing.assert_allclose(M.apply_partial(v, rows), M.apply(v)[rows],
                                   atol=1e-12)

    def test_supports_partial_flag(self, system):
        A, _ = system
        assert BlockJacobiPreconditioner(A, page_size=36).supports_partial

    def test_factors_are_precomputed(self, system):
        A, _ = system
        M = BlockJacobiPreconditioner(A, page_size=36)
        assert all(M.blocked.has_cached_factor(b) for b in range(M.num_blocks))

    def test_wrong_length_rejected(self, system):
        A, v = system
        M = BlockJacobiPreconditioner(A, page_size=36)
        with pytest.raises(ValueError):
            M.apply(v[:-1])

    def test_improves_conditioning(self, system):
        """Block-Jacobi should beat point-Jacobi in CG iteration counts."""
        from repro.solvers.reference import preconditioned_conjugate_gradient
        A, _ = system
        b = A @ np.ones(A.shape[0])
        block = preconditioned_conjugate_gradient(
            A, b, preconditioner=BlockJacobiPreconditioner(A, page_size=36))
        point = preconditioned_conjugate_gradient(
            A, b, preconditioner=JacobiPreconditioner(A))
        assert block.iterations <= point.iterations
