"""Rank-runtime tests: the N-rank solver must equal the single-rank one
bit for bit, while really moving halos and reducing over a rank tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.manager import make_strategy
from repro.distributed.ranks import RankKernelEngine, RankRuntime
from repro.faults.injector import Injection
from repro.faults.scenarios import ErrorScenario, multi_error_scenario
from repro.matrices.blocked import PageBlockedMatrix
from repro.matrices.sparse import SparseOperator
from repro.matrices.stencil import poisson_3d_27pt, stencil_rhs
from repro.runtime.kernels import LocalKernelEngine
from repro.solvers.resilient_cg import ResilientCG, SolverConfig

pytestmark = pytest.mark.ranks

PAGE = 128


@pytest.fixture(scope="module")
def problem():
    A = poisson_3d_27pt(10)                       # n = 1000, 8 pages
    b = stencil_rhs(A, kind="random", seed=3)
    return A, b


@pytest.fixture(scope="module")
def tau(problem):
    """Ideal solve time, the clock the injection schedules live on."""
    A, b = problem
    with ResilientCG(A, b, config=SolverConfig(page_size=PAGE)) as solver:
        return solver.solve().record.solve_time


def run_solver(A, b, *, ranks, method=None, scenario=None, ideal_time=None,
               tolerance=1e-10):
    cfg = SolverConfig(page_size=PAGE, tolerance=tolerance, ranks=ranks)
    strategy = make_strategy(method) if method else None
    with ResilientCG(A, b, strategy=strategy, scenario=scenario,
                     config=cfg) as solver:
        return solver.solve(ideal_time=ideal_time)


def assert_bit_identical(a, b):
    assert np.array_equal(a.x, b.x), "iterates differ bitwise"
    assert a.record.iterations == b.record.iterations
    assert a.record.solve_time == b.record.solve_time
    assert a.record.final_residual == b.record.final_residual
    assert a.stats.pages_recovered == b.stats.pages_recovered
    assert a.stats.pages_unrecoverable == b.stats.pages_unrecoverable
    assert a.stats.contributions_skipped == b.stats.contributions_skipped
    assert a.stats.restarts == b.stats.restarts
    assert a.stats.rollbacks == b.stats.rollbacks


class TestRankEquivalence:
    """The acceptance criterion: 4 ranks == 1 rank, bit for bit."""

    def test_fault_free_solve_bit_identical(self, problem):
        A, b = problem
        single = run_solver(A, b, ranks=1)
        four = run_solver(A, b, ranks=4)
        assert single.converged and four.converged
        assert_bit_identical(single, four)

    @pytest.mark.parametrize("ranks", [2, 3, 4])
    def test_rank_counts_including_non_power_of_two(self, problem, ranks):
        A, b = problem
        single = run_solver(A, b, ranks=1)
        multi = run_solver(A, b, ranks=ranks)
        assert_bit_identical(single, multi)

    @pytest.mark.parametrize("method", ["FEIR", "AFEIR", "Lossy", "ckpt",
                                        "Trivial"])
    def test_fixed_injections_bit_identical(self, problem, tau, method):
        A, b = problem
        injections = [Injection(time=tau * 0.2, vector="x", page=3),
                      Injection(time=tau * 0.5, vector="g", page=5),
                      Injection(time=tau * 0.8, vector="d0", page=1)]
        scenario = multi_error_scenario(injections, name=f"{method}-eq")
        single = run_solver(A, b, ranks=1, method=method, scenario=scenario,
                            ideal_time=tau)
        four = run_solver(A, b, ranks=4, method=method, scenario=scenario,
                         ideal_time=tau)
        touched = (single.stats.pages_recovered + single.stats.restarts
                   + single.stats.pages_unrecoverable)
        assert touched > 0
        assert_bit_identical(single, four)

    def test_rate_based_scenario_bit_identical(self, problem, tau):
        """Error rate > 0: the same seeded schedule drives both solvers."""
        A, b = problem

        def scenario():
            return ErrorScenario(name="rate", normalized_rate=8.0,
                                 seed=np.random.SeedSequence(42))
        single = run_solver(A, b, ranks=1, method="AFEIR",
                            scenario=scenario(), ideal_time=tau)
        four = run_solver(A, b, ranks=4, method="AFEIR",
                         scenario=scenario(), ideal_time=tau)
        assert single.record.faults_injected > 0
        assert_bit_identical(single, four)

    def test_sparse_operator_backend_bit_identical(self, problem):
        """The SciPy-free fast path partitions identically."""
        A, b = problem
        op = SparseOperator.from_scipy(A)
        single = run_solver(op, b, ranks=1)
        four = run_solver(op, b, ranks=4)
        assert_bit_identical(single, four)


class TestMeasuredCommunication:
    def test_halo_and_allreduce_are_measured(self, problem):
        A, b = problem
        result = run_solver(A, b, ranks=4)
        st = result.rank_stats
        assert st is not None and st.ranks == 4
        # One halo exchange per spmv (>= one per iteration), three dots
        # per iteration, every exchange moving real bytes.
        assert st.halo_exchanges >= result.record.iterations
        assert st.allreduces >= 3 * result.record.iterations
        assert st.halo_bytes > 0 and st.allreduce_bytes > 0
        assert st.halo_seconds > 0.0 and st.allreduce_seconds > 0.0
        assert len(st.message_samples) > 0
        summary = st.summary()
        assert summary["halo_ms_per_exchange"] > 0.0

    def test_single_rank_reports_no_comm(self, problem):
        A, b = problem
        result = run_solver(A, b, ranks=1)
        assert result.rank_stats is None

    def test_recovery_runs_on_owner_rank(self, problem, tau):
        A, b = problem
        # Page 5 of 8 lives in the upper half: with 4 equal strips of 2
        # pages each, its owner is rank 2.
        scenario = multi_error_scenario(
            [Injection(time=tau * 0.4, vector="x", page=5)], name="owner")
        result = run_solver(A, b, ranks=4, method="FEIR", scenario=scenario,
                            ideal_time=tau)
        st = result.rank_stats
        assert st.recoveries >= 1
        assert set(st.recoveries_by_rank) == {2}


class TestRankValidation:
    def test_ranks_must_be_positive(self, problem):
        A, b = problem
        with pytest.raises(ValueError, match="ranks"):
            ResilientCG(A, b, config=SolverConfig(ranks=0))

    def test_threaded_with_ranks_is_a_valid_cell(self, problem):
        # The unified runtime lifted the old "ranks needs the simulated
        # backend" restriction: threaded scheduling composes with the
        # ranks placement, and the cell stays bit-identical.
        A, b = problem
        baseline = run_solver(A, b, ranks=2)
        with ResilientCG(A, b, config=SolverConfig(
                page_size=PAGE, tolerance=1e-10, ranks=2,
                backend="threaded", pace=0.0, max_threads=4)) as solver:
            threaded = solver.solve()
        assert np.array_equal(threaded.x, baseline.x)
        assert threaded.solve_time == baseline.solve_time

    def test_local_placement_rejects_ranks(self, problem):
        A, b = problem
        with pytest.raises(ValueError, match="placement"):
            ResilientCG(A, b, config=SolverConfig(ranks=2,
                                                  placement="local"))

    def test_more_ranks_than_pages_rejected(self, problem):
        A, b = problem                  # 1000 rows = 8 pages of 128
        with pytest.raises(ValueError, match="aligned"):
            ResilientCG(A, b, config=SolverConfig(ranks=16, page_size=PAGE))


class TestRankRuntimeUnit:
    """Direct kernel-level checks against the local engine."""

    @pytest.fixture(scope="class")
    def engines(self, problem):
        A, _ = problem
        blocked = PageBlockedMatrix(A, page_size=PAGE)
        rank_engine = RankKernelEngine(blocked, ranks=4)
        local = LocalKernelEngine(blocked.A, blocked.n, PAGE)
        yield local, rank_engine
        rank_engine.close()

    def test_spmv_bitwise(self, engines, problem):
        local, ranked = engines
        A, _ = problem
        rng = np.random.default_rng(0)
        d = rng.standard_normal(A.shape[0])
        out_l = np.zeros_like(d)
        out_r = np.zeros_like(d)
        local.spmv(d, out_l)
        ranked.spmv(d, out_r)
        assert np.array_equal(out_l, out_r)

    def test_dot_bitwise_with_skips(self, engines, problem):
        local, ranked = engines
        A, _ = problem
        rng = np.random.default_rng(1)
        u = rng.standard_normal(A.shape[0])
        v = rng.standard_normal(A.shape[0])
        for skip in (frozenset(), {0}, {3, 5}, {7}):
            assert local.dot(u, v, skip) == ranked.dot(u, v, skip)

    def test_masked_axpy_bitwise(self, engines, problem):
        local, ranked = engines
        A, _ = problem
        rng = np.random.default_rng(2)
        y0 = rng.standard_normal(A.shape[0])
        v = rng.standard_normal(A.shape[0])
        for skip in (frozenset(), {2, 6}):
            y_l = y0.copy()
            y_r = y0.copy()
            local.axpy(y_l, 0.37, v, skip)
            ranked.axpy(y_r, 0.37, v, skip)
            assert np.array_equal(y_l, y_r)

    def test_runtime_close_is_idempotent(self, problem):
        A, _ = problem
        blocked = PageBlockedMatrix(A, page_size=PAGE)
        runtime = RankRuntime(blocked, 2)
        runtime.close()
        runtime.close()

    def test_page_owner_mapping(self, problem):
        A, _ = problem
        blocked = PageBlockedMatrix(A, page_size=PAGE)
        with RankRuntime(blocked, 4) as runtime:
            owners = [runtime.page_owner(p) for p in range(8)]
            assert owners == sorted(owners)
            assert set(owners) == {0, 1, 2, 3}
            with pytest.raises(IndexError):
                runtime.page_owner(8)
