"""Partition invariants over random sparse and stencil matrices, plus
the communication-model edge cases (satellites of the rank runtime)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.distributed.comm import (CommunicationModel,
                                    fit_communication_model)
from repro.distributed.partition import StripPartition
from repro.matrices.random_spd import random_sparse_spd
from repro.matrices.stencil import poisson_2d_5pt, poisson_3d_27pt
from repro.runtime.cost_model import DEFAULT_COST_MODEL

MATRICES = {
    "poisson3d": lambda: poisson_3d_27pt(8),
    "poisson2d": lambda: poisson_2d_5pt(20),
    "random_sparse": lambda: random_sparse_spd(400, density=0.02, seed=11),
}


@pytest.fixture(params=sorted(MATRICES), scope="module")
def matrix(request):
    return sp.csr_matrix(MATRICES[request.param]())


@pytest.mark.parametrize("num_ranks", [1, 2, 3, 4, 7])
@pytest.mark.parametrize("align", [1, 64])
class TestPartitionInvariants:
    def test_rows_partition_range_exactly(self, matrix, num_ranks, align):
        part = StripPartition(matrix, num_ranks, align=align)
        rows = []
        for p in part.partitions:
            rows.extend(range(p.row_start, p.row_stop))
        assert rows == list(range(matrix.shape[0]))

    def test_halo_is_exactly_out_of_strip_columns(self, matrix, num_ranks,
                                                  align):
        part = StripPartition(matrix, num_ranks, align=align)
        for p in part.partitions:
            sub = matrix[p.row_start:p.row_stop, :]
            cols = np.unique(sub.indices)
            expected = set(cols[(cols < p.row_start)
                                | (cols >= p.row_stop)].tolist())
            received = set()
            halo = part.halo_indices(p.rank)
            for src, idx in halo.items():
                owner = part.partition(src)
                assert owner.row_start <= idx.min()
                assert idx.max() < owner.row_stop
                received.update(idx.tolist())
            assert received == expected
            assert p.halo_size == len(expected)
            assert sum(p.halo_sizes()) == p.halo_size

    def test_neighbour_relation_symmetric(self, matrix, num_ranks, align):
        # All suite matrices are structurally symmetric, so "I read from
        # you" must imply "you read from me".
        part = StripPartition(matrix, num_ranks, align=align)
        for p in part.partitions:
            for other in p.neighbours:
                assert p.rank in part.partition(other).neighbours

    def test_send_plans_mirror_halo_indices(self, matrix, num_ranks, align):
        part = StripPartition(matrix, num_ranks, align=align)
        for p in part.partitions:
            for dst, idx in part.send_plan(p.rank).items():
                expected = part.halo_indices(dst)[p.rank]
                assert np.array_equal(idx, expected)

    def test_local_nnz_sums_to_total(self, matrix, num_ranks, align):
        part = StripPartition(matrix, num_ranks, align=align)
        assert sum(p.local_nnz for p in part.partitions) == matrix.nnz


class TestPartitionValidation:
    def test_empty_aligned_strip_is_loud(self):
        A = poisson_3d_27pt(4)          # n = 64
        with pytest.raises(ValueError, match="aligned"):
            StripPartition(A, num_ranks=3, align=32)   # only 2 units

    def test_alignment_snaps_bounds(self):
        A = poisson_3d_27pt(8)          # n = 512
        part = StripPartition(A, num_ranks=4, align=128)
        assert all(b % 128 == 0 for b in part.bounds[:-1])

    def test_bad_align_rejected(self):
        A = poisson_3d_27pt(4)
        with pytest.raises(ValueError, match="align"):
            StripPartition(A, num_ranks=2, align=0)

    def test_owner_of_row(self):
        A = poisson_3d_27pt(8)
        part = StripPartition(A, num_ranks=4)
        for p in part.partitions:
            assert part.owner_of_row(p.row_start) == p.rank
            assert part.owner_of_row(p.row_stop - 1) == p.rank
        with pytest.raises(IndexError):
            part.owner_of_row(A.shape[0])


class TestCommunicationEdgeCases:
    @pytest.fixture(scope="class")
    def comm(self):
        return CommunicationModel(DEFAULT_COST_MODEL)

    def test_broadcast_edges(self, comm):
        assert comm.broadcast(0, 100.0) == 0.0
        assert comm.broadcast(1, 100.0) == 0.0
        assert comm.broadcast(2, 0.0) == pytest.approx(
            DEFAULT_COST_MODEL.network_latency)
        with pytest.raises(ValueError):
            comm.broadcast(4, -1.0)

    def test_broadcast_stage_count(self, comm):
        one_msg = comm.broadcast(2, 800.0)
        assert comm.broadcast(8, 800.0) == pytest.approx(3 * one_msg)
        assert comm.broadcast(5, 800.0) == pytest.approx(3 * one_msg)

    def test_allreduce_edges(self, comm):
        assert comm.allreduce(0) == 0.0
        assert comm.allreduce(1) == 0.0
        assert comm.allreduce(2, values=0) == pytest.approx(
            DEFAULT_COST_MODEL.network_latency)
        with pytest.raises(ValueError):
            comm.allreduce(4, values=-1)

    def test_allreduce_payload_scales(self, comm):
        assert comm.allreduce(4, values=1000) > comm.allreduce(4, values=1)

    def test_halo_per_neighbour_sizes(self, comm):
        cm = DEFAULT_COST_MODEL
        # Documented semantics: one latency plus the largest share.
        expected = cm.network_latency + 8.0 * 300 / cm.network_bandwidth
        assert comm.halo_exchange([100, 300, 200]) == pytest.approx(expected)
        # Zero-size neighbours contribute nothing.
        assert comm.halo_exchange([0, 300]) == \
            pytest.approx(comm.halo_exchange([300]))
        assert comm.halo_exchange([]) == 0.0
        assert comm.halo_exchange([0, 0]) == 0.0
        with pytest.raises(ValueError):
            comm.halo_exchange([-1, 5])

    def test_halo_even_split_matches_sequence_form(self, comm):
        assert comm.halo_exchange(600, 3) == \
            pytest.approx(comm.halo_exchange([200, 200, 200]))


class TestCommCalibration:
    def test_fit_recovers_synthetic_constants(self):
        latency, bandwidth = 40e-6, 2e8
        samples = [(b, latency + b / bandwidth)
                   for b in (1e3, 1e4, 1e5, 1e6)]
        model, fit_lat, fit_bw = fit_communication_model(samples)
        assert fit_lat == pytest.approx(latency, rel=1e-6)
        assert fit_bw == pytest.approx(bandwidth, rel=1e-6)
        assert model.cost_model.network_latency == pytest.approx(latency,
                                                                 rel=1e-6)

    def test_fit_degenerate_single_size(self):
        samples = [(4096.0, 50e-6), (4096.0, 52e-6)]
        model, fit_lat, fit_bw = fit_communication_model(samples)
        assert fit_bw == DEFAULT_COST_MODEL.network_bandwidth
        assert fit_lat > 0

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_communication_model([])
