"""Tests for the simulated distributed layer and the scaling model."""


import pytest

from repro.distributed.cluster import ClusterModel
from repro.distributed.comm import CommunicationModel
from repro.distributed.partition import StripPartition
from repro.matrices.stencil import poisson_3d_27pt
from repro.runtime.cost_model import DEFAULT_COST_MODEL


class TestStripPartition:
    @pytest.fixture(scope="class")
    def partition(self):
        return StripPartition(poisson_3d_27pt(8), num_ranks=4)

    def test_rows_are_covered_exactly_once(self, partition):
        rows = []
        for p in partition.partitions:
            rows.extend(range(p.row_start, p.row_stop))
        assert rows == list(range(partition.n))

    def test_local_nnz_sums_to_total(self, partition):
        assert sum(p.local_nnz for p in partition.partitions) == partition.A.nnz

    def test_interior_ranks_have_two_neighbours(self, partition):
        interior = partition.partition(1)
        assert len(interior.neighbours) >= 2

    def test_halo_positive_for_stencil(self, partition):
        assert partition.max_halo() > 0

    def test_load_imbalance_close_to_one(self, partition):
        assert 1.0 <= partition.load_imbalance() < 1.3

    def test_validation(self):
        A = poisson_3d_27pt(4)
        with pytest.raises(ValueError):
            StripPartition(A, 0)
        with pytest.raises(ValueError):
            StripPartition(A, A.shape[0] + 1)
        with pytest.raises(IndexError):
            StripPartition(A, 2).partition(5)


class TestCommunicationModel:
    def test_halo_exchange_zero_cases(self):
        comm = CommunicationModel(DEFAULT_COST_MODEL)
        assert comm.halo_exchange(0, 2) == 0.0
        assert comm.halo_exchange(100, 0) == 0.0

    def test_halo_exchange_grows_with_volume(self):
        comm = CommunicationModel(DEFAULT_COST_MODEL)
        assert comm.halo_exchange(10_000, 2) > comm.halo_exchange(100, 2)

    def test_halo_validation(self):
        comm = CommunicationModel(DEFAULT_COST_MODEL)
        with pytest.raises(ValueError):
            comm.halo_exchange(-1, 1)

    def test_allreduce_log_scaling(self):
        comm = CommunicationModel(DEFAULT_COST_MODEL)
        assert comm.allreduce(1) == 0.0
        assert comm.allreduce(16) == pytest.approx(comm.allreduce(2) * 4)

    def test_broadcast(self):
        comm = CommunicationModel(DEFAULT_COST_MODEL)
        assert comm.broadcast(1, 100.0) == 0.0
        assert comm.broadcast(8, 100.0) > 0.0


class TestClusterModel:
    @pytest.fixture(scope="class")
    def model(self):
        # Tiny calibration problem so the test stays fast.
        return ClusterModel(target_points=256, calibration_points=12,
                            checkpoint_interval=20)

    def test_iteration_time_decreases_with_ranks(self, model):
        assert model.iteration_time(64) < model.iteration_time(8)

    def test_method_overheads_ordering(self, model):
        ideal = model.iteration_time(16, "ideal")
        assert model.iteration_time(16, "AFEIR") >= ideal
        assert model.iteration_time(16, "FEIR") >= model.iteration_time(16, "AFEIR")
        assert model.iteration_time(16, "ckpt") > ideal

    def test_parallel_efficiency_reasonable(self, model):
        eff = model.ideal_parallel_efficiency(1024)
        assert 0.4 < eff <= 1.0

    def test_run_produces_full_grid(self, model):
        results = model.run(core_counts=(64, 128), error_counts=(1,))
        methods = {r.method for r in results}
        assert "Ideal" in methods and "FEIR" in methods
        cores = {r.cores for r in results}
        assert cores == {64, 128}

    def test_speedups_relative_to_64_core_ideal(self, model):
        results = model.run(core_counts=(64, 128), error_counts=(1,))
        ideal64 = [r for r in results
                   if r.method == "Ideal" and r.cores == 64][0]
        assert ideal64.speedup == pytest.approx(1.0)
        ideal128 = [r for r in results
                    if r.method == "Ideal" and r.cores == 128][0]
        assert 1.0 < ideal128.speedup <= 2.0

    def test_exact_recovery_scales_better_than_checkpoint(self, model):
        results = model.run(core_counts=(64, 512), error_counts=(1,))
        def speedup(method, cores):
            return [r for r in results
                    if r.method == method and r.cores == cores][0].speedup
        assert speedup("FEIR", 512) > speedup("ckpt", 512)
        assert speedup("AFEIR", 512) > speedup("ckpt", 512)

    def test_calibration_is_cached(self, model):
        first = model._calibrate()
        second = model._calibrate()
        assert first is second


class TestClusterModelFixes:
    """Regressions for the halo accounting and degenerate-config bugs."""

    def test_single_rank_charges_no_communication(self):
        """num_ranks == 1 must not pay the old phantom one-neighbour halo:
        the iteration time is then independent of the network constants."""
        base = ClusterModel(target_points=256, calibration_points=12)
        crippled_net = ClusterModel(
            target_points=256, calibration_points=12,
            cost_model=DEFAULT_COST_MODEL.scaled(network_bandwidth=1e3,
                                                 network_latency=1.0))
        assert base.iteration_time(1) == crippled_net.iteration_time(1)
        # Sanity: with more than one rank the network very much matters.
        assert crippled_net.iteration_time(4) > 10 * base.iteration_time(4)

    def test_two_ranks_charge_one_neighbour_plane(self):
        model = ClusterModel(target_points=256, calibration_points=12)
        comm = CommunicationModel(model.cost_model)
        plane = 256 ** 2
        two = model.iteration_time(2)
        one = model.iteration_time(1)
        # t(2) has half the compute of t(1) plus one plane of halo and
        # the rank-2 allreduces; the halo share matches the comm model.
        halo_and_reduce = comm.halo_exchange([plane]) + 2 * comm.allreduce(2)
        compute_1 = one - 6.0 * model.cost_model.task_overhead
        expected = (compute_1 / 2 + halo_and_reduce
                    + 6.0 * model.cost_model.task_overhead)
        assert two == pytest.approx(expected, rel=1e-12)

    def test_degenerate_core_counts_are_loud(self):
        model = ClusterModel(target_points=256, calibration_points=12)
        with pytest.raises(ValueError, match="clamp"):
            model.run(core_counts=(4, 64))
        with pytest.raises(ValueError, match="clamp"):
            model.ideal_parallel_efficiency(4)
        with pytest.raises(ValueError, match="empty"):
            model.run(core_counts=())
        with pytest.raises(ValueError, match="num_ranks"):
            model.iteration_time(0)

    def test_comm_model_is_injectable(self):
        slow = CommunicationModel(
            DEFAULT_COST_MODEL.scaled(network_bandwidth=1e6))
        base = ClusterModel(target_points=256, calibration_points=12)
        calibrated = ClusterModel(target_points=256, calibration_points=12,
                                  comm_model=slow)
        assert calibrated.iteration_time(8) > base.iteration_time(8)
        assert calibrated.iteration_time(1) == base.iteration_time(1)
